//! The self-adjusting folding contraction tree (paper §3.1): the general
//! variable-width sliding-window structure.
//!
//! The tree is a complete binary tree over a power-of-two array of leaf
//! slots. Live leaves occupy a contiguous slot range; slots to the left of
//! the range are *void* (dropped by earlier slides) and slots to the right
//! are void slots awaiting future appends. Appending past the last slot
//! *unfolds* the tree (a fresh complete tree of equal size is merged in as
//! the right child of a new root, increasing the height by one); when the
//! entire left half of the leaf level becomes void the tree *folds* (the
//! right child of the root is promoted, decreasing the height by one).
//!
//! Because live leaves never move between slots, a slide only dirties the
//! slots it touches and change propagation recomputes exactly the paths
//! from dirtied slots to the root — `O(delta · log window)` combiner
//! invocations — while every off-path node is reused from its in-place
//! memoized value.

use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::stats::Phase;
use crate::tree::{ContractionTree, TreeCx, TreeKind, WindowAggregator};

/// Variable-width self-adjusting contraction tree. See the module docs.
pub struct FoldingTree<V> {
    /// `levels[0]` are the leaf slots (power-of-two length); `levels[h]`
    /// halves in length as `h` grows; the last level is the root.
    levels: Vec<Vec<Option<Arc<V>>>>,
    /// First live slot: slots `start..start+len` hold the window.
    start: usize,
    /// Number of live leaves.
    len: usize,
    /// If set, a full rebuild (fresh initial run) is triggered whenever the
    /// slot capacity exceeds `factor × window size` — the simple rebalancing
    /// strategy §3.2 describes for workloads where drastic shrinks are rare.
    rebuild_factor: Option<u32>,
}

impl<V> FoldingTree<V> {
    /// Creates an empty folding tree that never voluntarily rebuilds.
    pub fn new() -> Self {
        FoldingTree {
            levels: vec![vec![None]],
            start: 0,
            len: 0,
            rebuild_factor: None,
        }
    }

    /// Creates a folding tree that performs a fresh initial run whenever the
    /// leaf capacity grows beyond `factor` times the live window size
    /// (paper §3.2 suggests 8 or 16).
    pub fn with_rebuild_factor(factor: u32) -> Self {
        let mut tree = Self::new();
        tree.rebuild_factor = Some(factor.max(2));
        tree
    }

    /// Current leaf-slot capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.levels[0].len()
    }

    fn end(&self) -> usize {
        self.start + self.len
    }

    /// Resets to the canonical empty state.
    fn clear(&mut self) {
        self.levels = vec![vec![None]];
        self.start = 0;
        self.len = 0;
    }

    /// Recomputes the parent of two (possibly void) children.
    fn join<K>(
        cx: &mut TreeCx<'_, K, V>,
        left: Option<&Arc<V>>,
        right: Option<&Arc<V>>,
    ) -> Option<Arc<V>> {
        match (left, right) {
            (Some(l), Some(r)) => Some(cx.merge(Phase::Foreground, l, r)),
            (Some(l), None) => Some(Arc::clone(l)),
            (None, Some(r)) => Some(Arc::clone(r)),
            (None, None) => None,
        }
    }

    /// Full bottom-up construction over the current leaf level.
    fn build_internal<K>(&mut self, cx: &mut TreeCx<'_, K, V>) {
        let mut width = self.capacity() / 2;
        let mut child_level = 0;
        self.levels.truncate(1);
        while width >= 1 {
            let mut level = Vec::with_capacity(width);
            for i in 0..width {
                let value = {
                    let children = &self.levels[child_level];
                    Self::join(cx, children[2 * i].as_ref(), children[2 * i + 1].as_ref())
                };
                level.push(value);
            }
            self.levels.push(level);
            child_level += 1;
            width /= 2;
        }
    }

    /// Doubles the capacity: the current tree becomes the left child of a
    /// new root; the right half starts void.
    fn unfold(&mut self) {
        let cap = self.capacity();
        for level in self.levels.iter_mut() {
            let width = level.len();
            level.extend(std::iter::repeat_with(|| None).take(width));
        }
        // New root level: left child is the old root, right child void.
        let old_root = self.levels.last().and_then(|l| l[0].clone());
        self.levels.push(vec![old_root]);
        debug_assert_eq!(self.capacity(), cap * 2);
    }

    /// Halves the capacity by promoting the right child of the root, valid
    /// only when the whole left half of the leaf level is void.
    fn fold(&mut self) {
        let half = self.capacity() / 2;
        debug_assert!(self.start >= half, "fold requires a void left half");
        self.levels.pop(); // drop the root level
        for level in self.levels.iter_mut() {
            let keep = level.len() / 2;
            level.drain(..keep);
        }
        self.start -= half;
    }

    /// Propagates changes at the given leaf slots up to the root.
    fn propagate<K>(&mut self, cx: &mut TreeCx<'_, K, V>, mut dirty: Vec<usize>) {
        dirty.sort_unstable();
        dirty.dedup();
        for child_level in 0..self.levels.len().saturating_sub(1) {
            let mut parents: Vec<usize> = dirty.iter().map(|i| i / 2).collect();
            parents.dedup();
            for &p in &parents {
                let value = {
                    let children = &self.levels[child_level];
                    let left = children[2 * p].as_ref();
                    let right = children[2 * p + 1].as_ref();
                    // A present sibling that is not itself dirty is a reused
                    // memoized sub-computation.
                    let l_dirty = dirty.binary_search(&(2 * p)).is_ok();
                    let r_dirty = dirty.binary_search(&(2 * p + 1)).is_ok();
                    if let (Some(l), false) = (left, l_dirty) {
                        cx.reuse(l);
                    }
                    if let (Some(r), false) = (right, r_dirty) {
                        cx.reuse(r);
                    }
                    Self::join(cx, left, right)
                };
                self.levels[child_level + 1][p] = value;
            }
            dirty = parents;
        }
    }

    fn do_rebuild<K>(&mut self, cx: &mut TreeCx<'_, K, V>, live: Vec<Arc<V>>) {
        let n = live.len();
        let cap = n.max(1).next_power_of_two();
        let mut leaf_level: Vec<Option<Arc<V>>> = live.into_iter().map(Some).collect();
        leaf_level.resize_with(cap, || None);
        self.levels = vec![leaf_level];
        self.start = 0;
        self.len = n;
        self.build_internal(cx);
    }

    /// Live leaves, oldest first (used by the rebuild threshold and tests).
    fn live_leaves(&self) -> Vec<Arc<V>> {
        self.levels[0][self.start..self.end()]
            .iter()
            .map(|slot| Arc::clone(slot.as_ref().expect("live slot range must be non-void")))
            .collect()
    }
}

impl<V> Default for FoldingTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for FoldingTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FoldingTree")
            .field("capacity", &self.capacity())
            .field("start", &self.start)
            .field("len", &self.len)
            .field("levels", &self.levels.len())
            .finish()
    }
}

impl<V> Clone for FoldingTree<V> {
    fn clone(&self) -> Self {
        FoldingTree {
            levels: self.levels.clone(),
            start: self.start,
            len: self.len,
            rebuild_factor: self.rebuild_factor,
        }
    }
}

impl<K, V> WindowAggregator<K, V> for FoldingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
        Box::new(self.clone())
    }

    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
        let live: Vec<Arc<V>> = leaves.into_iter().flatten().collect();
        cx.note_added(live.len() as u64);
        self.do_rebuild(cx, live);
    }

    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if remove > self.len {
            return Err(TreeError::RemoveExceedsWindow {
                requested: remove,
                window: self.len,
            });
        }
        let added: Vec<Arc<V>> = added.into_iter().flatten().collect();
        cx.note_removed(remove as u64);
        cx.note_added(added.len() as u64);

        let mut dirty: Vec<usize> = Vec::with_capacity(remove + added.len());

        // Drop the oldest `remove` leaves: mark their slots void.
        for i in self.start..self.start + remove {
            self.levels[0][i] = None;
            dirty.push(i);
        }
        self.start += remove;
        self.len -= remove;

        if self.len == 0 && added.is_empty() {
            self.clear();
            return Ok(());
        }

        // Append new leaves, unfolding whenever the slots run out. Unfolding
        // preserves existing slot indices, so pending dirty entries stay
        // valid.
        for value in added {
            if self.end() == self.capacity() {
                self.unfold();
            }
            let slot = self.end();
            self.levels[0][slot] = Some(value);
            dirty.push(slot);
            self.len += 1;
        }

        // Fold while the entire left half of the leaf level is void.
        while self.capacity() > 1 && self.start >= self.capacity() / 2 {
            let half = self.capacity() / 2;
            self.fold();
            // Slot indices shifted down by `half`; voided slots in the
            // dropped half no longer exist (their removal is subsumed by
            // discarding the root that referenced them).
            dirty = dirty
                .into_iter()
                .filter_map(|i| i.checked_sub(half))
                .collect();
        }

        // Simple rebalancing strategy (§3.2): rebuild when the tree is far
        // taller than the window warrants.
        if let Some(factor) = self.rebuild_factor {
            let factor = usize::try_from(factor).unwrap_or(usize::MAX);
            if self.capacity() > factor.saturating_mul(self.len.max(1)) {
                let live = self.live_leaves();
                self.do_rebuild(cx, live);
                return Ok(());
            }
        }

        self.propagate(cx, dirty);
        Ok(())
    }

    fn insert_at(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        values: Vec<Arc<V>>,
    ) -> Result<(), TreeError> {
        if at > self.len {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count: values.len(),
                window: self.len,
            });
        }
        if values.is_empty() {
            return Ok(());
        }
        let k = values.len();
        cx.note_added(k as u64);
        let a = self.start;
        let suffix = self.len - at;
        let mut dirty: Vec<usize> = Vec::with_capacity(2 * (at.min(suffix) + k));
        if a >= k && at <= suffix {
            // Shift the (smaller) prefix left by `k`: the vacated gap
            // `[a - k + at, a + at)` receives the new leaves. Ascending
            // order is safe because every target slot precedes its source.
            for i in a..a + at {
                self.levels[0][i - k] = self.levels[0][i].take();
                dirty.push(i - k);
                dirty.push(i);
            }
            for (j, v) in values.into_iter().enumerate() {
                let slot = a - k + at + j;
                self.levels[0][slot] = Some(v);
                dirty.push(slot);
            }
            self.start = a - k;
            self.len += k;
        } else {
            // Shift the suffix right by `k`, unfolding for room. Descending
            // order is safe because every target slot follows its source.
            while self.end() + k > self.capacity() {
                self.unfold();
            }
            for i in (a + at..a + self.len).rev() {
                self.levels[0][i + k] = self.levels[0][i].take();
                dirty.push(i);
                dirty.push(i + k);
            }
            for (j, v) in values.into_iter().enumerate() {
                let slot = a + at + j;
                self.levels[0][slot] = Some(v);
                dirty.push(slot);
            }
            self.len += k;
        }
        self.propagate(cx, dirty);
        Ok(())
    }

    fn evict_range(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        count: usize,
    ) -> Result<(), TreeError> {
        if at.checked_add(count).is_none_or(|end| end > self.len) {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count,
                window: self.len,
            });
        }
        if count == 0 {
            return Ok(());
        }
        cx.note_removed(count as u64);
        let a = self.start;
        let suffix = self.len - at - count;
        let mut dirty: Vec<usize> = Vec::with_capacity(count + 2 * at.min(suffix));
        // Void the evicted range, then close the gap by shifting whichever
        // side is smaller.
        for i in a + at..a + at + count {
            self.levels[0][i] = None;
            dirty.push(i);
        }
        if at <= suffix {
            for i in (a..a + at).rev() {
                self.levels[0][i + count] = self.levels[0][i].take();
                dirty.push(i);
                dirty.push(i + count);
            }
            self.start = a + count;
        } else {
            for i in a + at + count..a + self.len {
                self.levels[0][i - count] = self.levels[0][i].take();
                dirty.push(i);
                dirty.push(i - count);
            }
        }
        self.len -= count;
        if self.len == 0 {
            self.clear();
            return Ok(());
        }
        // A prefix shift may push `start` across the midpoint: fold, with
        // the same dirty-slot remap as `advance`.
        while self.capacity() > 1 && self.start >= self.capacity() / 2 {
            let half = self.capacity() / 2;
            self.fold();
            dirty = dirty
                .into_iter()
                .filter_map(|i| i.checked_sub(half))
                .collect();
        }
        if let Some(factor) = self.rebuild_factor {
            let factor = usize::try_from(factor).unwrap_or(usize::MAX);
            if self.capacity() > factor.saturating_mul(self.len.max(1)) {
                let live = self.live_leaves();
                self.do_rebuild(cx, live);
                return Ok(());
            }
        }
        self.propagate(cx, dirty);
        Ok(())
    }

    fn root(&self) -> Option<Arc<V>> {
        if self.len == 0 {
            None
        } else {
            self.levels.last().and_then(|l| l[0].clone())
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        // Pass-through nodes share the child's allocation; count each
        // distinct allocation once.
        let mut bytes = 0;
        for (h, level) in self.levels.iter().enumerate() {
            for (i, slot) in level.iter().enumerate() {
                let Some(v) = slot else { continue };
                let pass_through = h > 0 && {
                    let children = &self.levels[h - 1];
                    [children.get(2 * i), children.get(2 * i + 1)]
                        .into_iter()
                        .flatten()
                        .flatten()
                        .any(|c| Arc::ptr_eq(c, v))
                };
                if !pass_through {
                    bytes += combiner.value_bytes(key, v);
                }
            }
        }
        bytes
    }

    fn kind(&self) -> TreeKind {
        TreeKind::Folding
    }
}

impl<K, V> ContractionTree<K, V> for FoldingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn height(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.levels.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    fn root_of(tree: &FoldingTree<u64>) -> u64 {
        *WindowAggregator::<u8, u64>::root(tree).unwrap()
    }

    #[test]
    fn initial_run_pads_to_power_of_two() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
        assert_eq!(tree.capacity(), 4);
        assert_eq!(root_of(&tree), 6);
        assert_eq!(ContractionTree::<u8, u64>::height(&tree), 3);
    }

    #[test]
    fn paper_figure_2_scenario() {
        // T1: add {0,1,2}; T2: add {3,4}, remove {0}; T3: add {5,6,7},
        // remove {1,2,3}.
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();

        tree.rebuild(&mut cx, leaves(&[10, 11, 12])); // values for items 0,1,2
        assert_eq!(tree.capacity(), 4);
        assert_eq!(root_of(&tree), 33);

        // T2: insert 3 & 4 — node 4 forces an unfold to capacity 8.
        tree.advance(&mut cx, 1, leaves(&[13, 14])).unwrap();
        assert_eq!(tree.capacity(), 8);
        assert_eq!(ContractionTree::<u8, u64>::height(&tree), 4);
        assert_eq!(root_of(&tree), 11 + 12 + 13 + 14);

        // T3: remove items 1,2,3 — left half all void, tree folds.
        tree.advance(&mut cx, 3, leaves(&[15, 16, 17])).unwrap();
        assert_eq!(tree.capacity(), 4);
        assert_eq!(ContractionTree::<u8, u64>::height(&tree), 3);
        assert_eq!(root_of(&tree), 14 + 15 + 16 + 17);
    }

    #[test]
    fn incremental_update_is_logarithmic() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        let values: Vec<u64> = (0..1024).collect();
        tree.rebuild(&mut cx, leaves(&values));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, leaves(&[5000])).unwrap();
        assert_eq!(root_of(&tree), (1..1024).sum::<u64>() + 5000);
        // Two touched paths of height ≤ 11 each.
        assert!(
            stats.foreground.merges <= 22,
            "merges = {}",
            stats.foreground.merges
        );
        assert!(stats.reused > 0);
    }

    #[test]
    fn matches_reference_under_random_slides() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = FoldingTree::new();
        let mut reference: std::collections::VecDeque<u64> = std::collections::VecDeque::new();

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, vec![]);

        let mut next = 0u64;
        for _ in 0..200 {
            let remove = rng.gen_range(0..=reference.len());
            let add = rng.gen_range(0..8usize);
            let added: Vec<u64> = (0..add)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect();
            for _ in 0..remove {
                reference.pop_front();
            }
            reference.extend(added.iter().copied());

            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, remove, leaves(&added)).unwrap();
            let expected: u64 = reference.iter().sum();
            match WindowAggregator::<u8, u64>::root(&tree) {
                Some(root) => assert_eq!(*root, expected),
                None => assert_eq!(expected, 0),
            }
            assert_eq!(WindowAggregator::<u8, u64>::len(&tree), reference.len());
        }
    }

    #[test]
    fn drastic_shrink_leaves_tree_tall_without_rebuild_factor() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);

        let mut tree = FoldingTree::new();
        let values: Vec<u64> = (0..1024).collect();
        tree.rebuild(&mut cx, leaves(&values));
        // Slide into steady state so the window is not left-aligned.
        tree.advance(&mut cx, 512, leaves(&(0..512).collect::<Vec<_>>()))
            .unwrap();
        // Now shrink hard: 1008 of 1024 leaves removed.
        tree.advance(&mut cx, 1008, vec![]).unwrap();
        let height = ContractionTree::<u8, u64>::height(&tree);
        let optimal = usize::try_from(16usize.ilog2()).unwrap() + 1;
        assert!(
            height > optimal,
            "plain folding tree should stay imbalanced: height {height} vs optimal {optimal}"
        );
    }

    #[test]
    fn rebuild_factor_restores_balance() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);

        let mut tree = FoldingTree::with_rebuild_factor(8);
        let values: Vec<u64> = (0..1024).collect();
        tree.rebuild(&mut cx, leaves(&values));
        tree.advance(&mut cx, 512, leaves(&(0..512).collect::<Vec<_>>()))
            .unwrap();
        tree.advance(&mut cx, 1008, vec![]).unwrap();
        let height = ContractionTree::<u8, u64>::height(&tree);
        assert!(
            height <= 6,
            "rebuild factor should rebalance: height {height}"
        );
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 16);
    }

    #[test]
    fn empty_after_drain_and_refill() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
        tree.advance(&mut cx, 4, vec![]).unwrap();
        assert!(WindowAggregator::<u8, u64>::is_empty(&tree));
        assert!(WindowAggregator::<u8, u64>::root(&tree).is_none());
        tree.advance(&mut cx, 0, leaves(&[7])).unwrap();
        assert_eq!(root_of(&tree), 7);
    }

    #[test]
    fn remove_more_than_window_is_rejected() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1]));
        assert!(matches!(
            tree.advance(&mut cx, 2, vec![]),
            Err(TreeError::RemoveExceedsWindow {
                requested: 2,
                window: 1
            })
        ));
        assert_eq!(root_of(&tree), 1);
    }

    /// Checks every structural invariant the folding tree relies on: the
    /// live slot range matches `reference` exactly, every slot outside it is
    /// void, and **every** internal node equals a bottom-up recomputation
    /// from the leaf level. A dirty-slot remap bug (a live slot dropped from
    /// the dirty set during a half-fold, or a subsumed void slot remapped
    /// onto a live one) leaves a stale internal node that this catches.
    fn assert_internally_consistent(
        tree: &FoldingTree<u64>,
        reference: &std::collections::VecDeque<u64>,
    ) {
        assert_eq!(tree.len, reference.len(), "live leaf count");
        assert!(
            tree.start + tree.len <= tree.capacity(),
            "window range exceeds capacity"
        );
        for (i, slot) in tree.levels[0].iter().enumerate() {
            let live = i >= tree.start && i < tree.start + tree.len;
            assert_eq!(
                slot.is_some(),
                live,
                "slot {i} liveness (start {}, len {})",
                tree.start,
                tree.len
            );
        }
        for (i, want) in reference.iter().enumerate() {
            let got = tree.levels[0][tree.start + i]
                .as_ref()
                .expect("live slot checked above");
            assert_eq!(**got, *want, "leaf {i} value");
        }
        for h in 1..tree.levels.len() {
            assert_eq!(
                tree.levels[h].len() * 2,
                tree.levels[h - 1].len(),
                "level {h} width"
            );
            for (i, node) in tree.levels[h].iter().enumerate() {
                let left = tree.levels[h - 1][2 * i].as_deref().copied();
                let right = tree.levels[h - 1][2 * i + 1].as_deref().copied();
                let want = match (left, right) {
                    (Some(l), Some(r)) => Some(l + r),
                    (Some(l), None) => Some(l),
                    (None, Some(r)) => Some(r),
                    (None, None) => None,
                };
                assert_eq!(
                    node.as_deref().copied(),
                    want,
                    "internal node (level {h}, index {i}) is stale"
                );
            }
        }
    }

    #[test]
    fn insert_at_splices_at_every_position() {
        let combiner = sum_combiner();
        let key = 0u8;
        for at in 0..=4usize {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let mut tree = FoldingTree::new();
            tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
            // Slide off-origin first so both shift directions get exercised.
            tree.advance(&mut cx, 2, leaves(&[5, 6])).unwrap();
            // Window is now [3, 4, 5, 6].
            tree.insert_at(&mut cx, at, vec![Arc::new(100), Arc::new(200)])
                .unwrap();
            let mut reference: std::collections::VecDeque<u64> = [3, 4, 5, 6].into();
            reference.insert(at, 200);
            reference.insert(at, 100);
            assert_internally_consistent(&tree, &reference);
            assert_eq!(root_of(&tree), reference.iter().sum::<u64>(), "at {at}");
        }
    }

    #[test]
    fn evict_range_splices_at_every_position() {
        let combiner = sum_combiner();
        let key = 0u8;
        for at in 0..=4usize {
            for count in 0..=(6 - at) {
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                let mut tree = FoldingTree::new();
                tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));
                tree.advance(&mut cx, 2, leaves(&[5, 6, 7, 8])).unwrap();
                // Window is now [3, 4, 5, 6, 7, 8].
                tree.evict_range(&mut cx, at, count).unwrap();
                let mut reference: std::collections::VecDeque<u64> = [3, 4, 5, 6, 7, 8].into();
                reference.drain(at..at + count);
                if reference.is_empty() {
                    assert!(WindowAggregator::<u8, u64>::root(&tree).is_none());
                    assert!(WindowAggregator::<u8, u64>::is_empty(&tree));
                } else {
                    assert_internally_consistent(&tree, &reference);
                    assert_eq!(
                        root_of(&tree),
                        reference.iter().sum::<u64>(),
                        "at {at} count {count}"
                    );
                }
            }
        }
    }

    #[test]
    fn splice_out_of_range_is_rejected_and_preserves_tree() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
        assert_eq!(
            tree.insert_at(&mut cx, 4, vec![Arc::new(9)]),
            Err(TreeError::SpliceOutOfRange {
                at: 4,
                count: 1,
                window: 3
            })
        );
        assert_eq!(
            tree.evict_range(&mut cx, 2, 2),
            Err(TreeError::SpliceOutOfRange {
                at: 2,
                count: 2,
                window: 3
            })
        );
        assert_eq!(root_of(&tree), 6);
        let reference: std::collections::VecDeque<u64> = [1, 2, 3].into();
        assert_internally_consistent(&tree, &reference);
    }

    #[test]
    fn interior_splice_work_is_logarithmic() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        let values: Vec<u64> = (0..1024).collect();
        tree.rebuild(&mut cx, leaves(&values));
        // Slide into steady state: the evicted prefix leaves void slots the
        // interior splice can shift into.
        tree.advance(&mut cx, 512, leaves(&(1024..1536).collect::<Vec<_>>()))
            .unwrap();

        // An interior insert near the front shifts the 3-leaf prefix into
        // the void, not the 1021-leaf suffix, and recomputes only the
        // touched root paths.
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.insert_at(&mut cx, 3, vec![Arc::new(5000)]).unwrap();
        assert_eq!(root_of(&tree), (512..1536).sum::<u64>() + 5000);
        assert!(
            stats.foreground.merges <= 60,
            "interior splice should be O(shift + log n): {} merges",
            stats.foreground.merges
        );
        assert!(stats.reused > 0);
    }

    mod splice_props {
        use super::*;
        use proptest::prelude::*;

        /// One step of a mixed in-order/out-of-order history.
        #[derive(Debug, Clone)]
        enum Op {
            Advance { remove: usize, add: Vec<u64> },
            InsertAt { at: usize, values: Vec<u64> },
            EvictRange { at: usize, count: usize },
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0usize..24, proptest::collection::vec(1u64..1_000, 0..8))
                    .prop_map(|(remove, add)| Op::Advance { remove, add }),
                (0usize..24, proptest::collection::vec(1u64..1_000, 0..6))
                    .prop_map(|(at, values)| Op::InsertAt { at, values }),
                (0usize..24, 0usize..8).prop_map(|(at, count)| Op::EvictRange { at, count }),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Satellite regression for the half-fold dirty-slot remap
            /// (`checked_sub(half)`): across random interleavings of
            /// window-shrinking advances (which fold), window-growing
            /// advances (which unfold), rebuild-factor rebuilds, and both
            /// splice directions, every internal node must always equal the
            /// bottom-up recomputation from the leaves. A remap that drops a
            /// live dirty slot — or keeps one the discarded root subsumed —
            /// leaves a stale node that the full-tree check pins down.
            #[test]
            fn dirty_remap_keeps_every_internal_node_fresh(
                factor in proptest::option::of(2u32..10),
                initial in proptest::collection::vec(1u64..1_000, 0..32),
                ops in proptest::collection::vec(op_strategy(), 0..40),
            ) {
                let combiner = sum_combiner();
                let key = 0u8;
                let mut tree = match factor {
                    Some(f) => FoldingTree::with_rebuild_factor(f),
                    None => FoldingTree::new(),
                };
                let mut reference: std::collections::VecDeque<u64> =
                    initial.iter().copied().collect();

                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.rebuild(&mut cx, leaves(&initial));
                assert_internally_consistent(&tree, &reference);

                for op in ops {
                    let mut stats = UpdateStats::default();
                    let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                    match op {
                        Op::Advance { remove, add } => {
                            let remove = remove.min(reference.len());
                            for _ in 0..remove {
                                reference.pop_front();
                            }
                            reference.extend(add.iter().copied());
                            tree.advance(&mut cx, remove, leaves(&add)).unwrap();
                        }
                        Op::InsertAt { at, values } => {
                            let at = at.min(reference.len());
                            for (j, v) in values.iter().enumerate() {
                                reference.insert(at + j, *v);
                            }
                            let values = values.into_iter().map(Arc::new).collect();
                            tree.insert_at(&mut cx, at, values).unwrap();
                        }
                        Op::EvictRange { at, count } => {
                            let at = at.min(reference.len());
                            let count = count.min(reference.len() - at);
                            reference.drain(at..at + count);
                            tree.evict_range(&mut cx, at, count).unwrap();
                        }
                    }
                    if reference.is_empty() {
                        prop_assert!(WindowAggregator::<u8, u64>::root(&tree).is_none());
                    } else {
                        assert_internally_consistent(&tree, &reference);
                        prop_assert_eq!(root_of(&tree), reference.iter().sum::<u64>());
                    }
                }
            }
        }
    }

    #[test]
    fn memo_bytes_counts_distinct_nodes() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = FoldingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
        // 3 leaves + C(1,2) + pass-through(3) + root = 5 distinct * 16 bytes.
        let bytes = WindowAggregator::<u8, u64>::memo_bytes(&tree, &combiner, &key);
        assert_eq!(bytes, 5 * 16);
    }
}
