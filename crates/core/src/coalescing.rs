//! The coalescing contraction tree (paper §4.2) for append-only windows,
//! with optional split (background/foreground) processing.
//!
//! The window only ever grows, so the whole history coalesces into a single
//! running aggregate. In *foreground-only* mode each run combines the new
//! data's aggregate into the root on the critical path. In *split* mode the
//! foreground hands the Reduce task the union of the previous root and the
//! fresh delta (no root merge on the critical path); the root is coalesced
//! with the delta in the background afterwards, paving the way for the next
//! run (Figure 5(b)).

use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::stats::Phase;
use crate::tree::{ContractionTree, TreeCx, TreeKind, WindowAggregator};

/// Append-only coalescing contraction tree. See the module docs.
pub struct CoalescingTree<V> {
    /// Aggregate of every leaf coalesced so far.
    root: Option<Arc<V>>,
    /// Delta awaiting background coalescing (split mode only).
    pending: Option<Arc<V>>,
    /// Whether split processing is enabled.
    split: bool,
    /// Total number of appended leaves.
    len: usize,
}

impl<V> CoalescingTree<V> {
    /// Creates an empty tree in foreground-only mode.
    pub fn new() -> Self {
        CoalescingTree {
            root: None,
            pending: None,
            split: false,
            len: 0,
        }
    }

    /// Creates an empty tree with split processing enabled: the root merge
    /// of each run is deferred to [`CoalescingTree::preprocess`] and the
    /// Reduce task receives two parts.
    pub fn with_split_processing() -> Self {
        CoalescingTree {
            root: None,
            pending: None,
            split: true,
            len: 0,
        }
    }

    /// Whether split processing is enabled.
    pub fn split_processing(&self) -> bool {
        self.split
    }
}

impl<V> Default for CoalescingTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for CoalescingTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoalescingTree")
            .field("len", &self.len)
            .field("split", &self.split)
            .field("pending", &self.pending.is_some())
            .finish()
    }
}

impl<V> Clone for CoalescingTree<V> {
    fn clone(&self) -> Self {
        CoalescingTree {
            root: self.root.clone(),
            pending: self.pending.clone(),
            split: self.split,
            len: self.len,
        }
    }
}

impl<K, V> WindowAggregator<K, V> for CoalescingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
        Box::new(self.clone())
    }

    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
        let live: Vec<Arc<V>> = leaves.into_iter().flatten().collect();
        self.len = live.len();
        cx.note_added(self.len as u64);
        self.pending = None;
        self.root = cx.fold(Phase::Foreground, live);
    }

    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if remove != 0 {
            return Err(TreeError::RemoveFromAppendOnly);
        }
        let live: Vec<Arc<V>> = added.into_iter().flatten().collect();
        if live.is_empty() {
            return Ok(());
        }
        self.len += live.len();
        cx.note_added(live.len() as u64);

        // If the previous delta was never coalesced in the background,
        // coalesce it now on the critical path.
        if let Some(pending) = self.pending.take() {
            self.root = Some(match &self.root {
                Some(root) => cx.merge(Phase::Foreground, root, &pending),
                None => pending,
            });
        }

        // Combine the newly appended leaves into a single delta (C'2).
        let delta = cx.fold(Phase::Foreground, live).expect("live is non-empty");

        if let (true, Some(root)) = (self.split, &self.root) {
            // Foreground stops here; reduce_parts() exposes {root, delta}.
            cx.reuse(root); // the previous root is reused as-is
            self.pending = Some(delta);
        } else {
            self.root = Some(match &self.root {
                Some(root) => cx.merge(Phase::Foreground, root, &delta),
                None => delta,
            });
        }
        Ok(())
    }

    fn preprocess(&mut self, cx: &mut TreeCx<'_, K, V>) {
        if let Some(pending) = self.pending.take() {
            self.root = Some(match &self.root {
                Some(root) => cx.merge(Phase::Background, root, &pending),
                None => pending,
            });
        }
    }

    fn root(&self) -> Option<Arc<V>> {
        // Under split processing the materialized root lags the window by
        // the still-pending delta; reduce_parts() exposes the full window.
        self.root.clone()
    }

    fn reduce_parts(&self) -> Vec<Arc<V>> {
        self.root
            .iter()
            .chain(self.pending.iter())
            .cloned()
            .collect()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        self.root
            .iter()
            .chain(self.pending.iter())
            .map(|v| combiner.value_bytes(key, v))
            .sum()
    }

    fn kind(&self) -> TreeKind {
        TreeKind::Coalescing
    }
}

impl<K, V> ContractionTree<K, V> for CoalescingTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn height(&self) -> usize {
        match (self.len, self.pending.is_some()) {
            (0, _) => 0,
            (_, false) => 1,
            (_, true) => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    fn parts_sum(tree: &CoalescingTree<u64>) -> u64 {
        WindowAggregator::<u8, u64>::reduce_parts(tree)
            .iter()
            .map(|v| **v)
            .sum()
    }

    #[test]
    fn foreground_mode_keeps_single_root() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = CoalescingTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
        assert_eq!(parts_sum(&tree), 6);

        tree.advance(&mut cx, 0, leaves(&[4, 5])).unwrap();
        assert_eq!(parts_sum(&tree), 15);
        assert_eq!(
            WindowAggregator::<u8, u64>::reduce_parts(&tree).len(),
            1,
            "foreground mode always exposes a single root"
        );
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 15);
        assert!(stats.background.is_empty());
    }

    #[test]
    fn split_mode_defers_root_merge() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = CoalescingTree::with_split_processing();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));

        // Advance: foreground folds the delta but does NOT touch the root.
        let mut fg = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut fg);
        tree.advance(&mut cx, 0, leaves(&[4, 5])).unwrap();
        assert_eq!(fg.foreground.merges, 1, "only 4+5 on the critical path");
        let parts = WindowAggregator::<u8, u64>::reduce_parts(&tree);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts_sum(&tree), 15);

        // Background coalesces the pending delta.
        let mut bg = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut bg);
        tree.preprocess(&mut cx);
        assert_eq!(bg.background.merges, 1);
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 15);
        assert_eq!(WindowAggregator::<u8, u64>::reduce_parts(&tree).len(), 1);
    }

    #[test]
    fn split_mode_without_background_still_correct() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = CoalescingTree::with_split_processing();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&[1]));
        // Two advances with no preprocess in between: the pending delta is
        // flushed on the foreground path of the second advance.
        tree.advance(&mut cx, 0, leaves(&[2])).unwrap();
        tree.advance(&mut cx, 0, leaves(&[3])).unwrap();
        assert_eq!(parts_sum(&tree), 6);
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 3);
    }

    #[test]
    fn removal_is_rejected() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = CoalescingTree::new();
        tree.rebuild(&mut cx, leaves(&[1]));
        assert_eq!(
            tree.advance(&mut cx, 1, leaves(&[2])).unwrap_err(),
            TreeError::RemoveFromAppendOnly
        );
        assert_eq!(parts_sum(&tree), 1);
    }

    #[test]
    fn empty_advance_is_a_no_op() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = CoalescingTree::new();
        tree.rebuild(&mut cx, vec![]);
        tree.advance(&mut cx, 0, vec![None, None]).unwrap();
        assert!(WindowAggregator::<u8, u64>::root(&tree).is_none());
        assert!(WindowAggregator::<u8, u64>::is_empty(&tree));
        assert_eq!(stats.total_merges(), 0);
    }

    #[test]
    fn first_append_in_split_mode_materializes_root() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = CoalescingTree::with_split_processing();
        tree.rebuild(&mut cx, vec![]);
        tree.advance(&mut cx, 0, leaves(&[7])).unwrap();
        // With no previous root there is nothing to defer.
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 7);
        assert_eq!(WindowAggregator::<u8, u64>::reduce_parts(&tree).len(), 1);
    }
}
