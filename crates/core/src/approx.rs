//! Keyed approximate windowed counting: one DGIM counter per key.
//!
//! The paper's §5 "approximation windows" observe that many sliding-window
//! queries tolerate bounded error in exchange for sublinear space. This
//! module applies that trade to the keyed setting: a
//! [`KeyedDistinctCounter`] maintains a
//! [`SlidingWindowCounter`](crate::SlidingWindowCounter) per key, giving
//!
//! * **exact** distinct-key counts — a key is active iff its newest event
//!   is inside the window, and DGIM always retains the newest event's
//!   timestamp exactly, so [`distinct_active`](KeyedDistinctCounter::distinct_active)
//!   has no error at all;
//! * **(1 ± ε)** per-key frequencies in
//!   O(keys · (1/ε) · log² window) space instead of one entry per event.
//!
//! Everything is deterministic (same event sequence ⇒ same buckets, same
//! estimates), matching the engine-wide bit-identical-replay invariant.

use std::collections::BTreeMap;

use crate::dgim::SlidingWindowCounter;

/// Approximate per-key event counts and exact distinct-key counts over a
/// sliding time window.
///
/// Keys are held in a `BTreeMap`, so iteration order — and therefore any
/// derived report — is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedDistinctCounter<K: Ord> {
    window: u64,
    epsilon: f64,
    counters: BTreeMap<K, SlidingWindowCounter>,
    latest: u64,
}

impl<K: Ord + Clone> KeyedDistinctCounter<K> {
    /// Creates a keyed counter for the trailing `window` time units with
    /// per-key relative-error bound `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0` or `epsilon` is not in `(0, 1]` (same
    /// contract as [`SlidingWindowCounter::new`]).
    #[must_use]
    pub fn new(window: u64, epsilon: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        KeyedDistinctCounter {
            window,
            epsilon,
            counters: BTreeMap::new(),
            latest: 0,
        }
    }

    /// The window length in time units.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The per-key relative-error bound.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Latest event timestamp seen across all keys.
    #[must_use]
    pub fn latest(&self) -> u64 {
        self.latest
    }

    /// Records one event for `key` at `time`. Timestamps should be fed in
    /// non-decreasing order; regressions clamp per key, exactly as in
    /// [`SlidingWindowCounter::record`].
    pub fn record(&mut self, key: K, time: u64) {
        self.latest = self.latest.max(time);
        let (window, epsilon) = (self.window, self.epsilon);
        self.counters
            .entry(key)
            .or_insert_with(|| SlidingWindowCounter::new(window, epsilon))
            .record(time);
    }

    /// Approximate number of events for `key` in the window ending at
    /// `now` (0 for unseen keys). Within `(1 ± ε)` of the true count.
    #[must_use]
    pub fn estimate(&self, key: &K, now: u64) -> u64 {
        self.counters.get(key).map_or(0, |c| c.count(now))
    }

    /// `(lower, upper)` bounds bracketing `key`'s true in-window count.
    #[must_use]
    pub fn bounds(&self, key: &K, now: u64) -> (u64, u64) {
        self.counters
            .get(key)
            .map_or((0, 0), |c| (c.lower_bound(now), c.upper_bound(now)))
    }

    /// Number of distinct keys with at least one event in the window
    /// ending at `now`. **Exact**, not approximate: DGIM retains each
    /// key's newest event timestamp precisely, and a key is active iff
    /// that timestamp is in range.
    #[must_use]
    pub fn distinct_active(&self, now: u64) -> u64 {
        self.counters
            .values()
            .filter(|c| c.upper_bound(now) > 0)
            .count() as u64
    }

    /// The active keys at `now`, in key order.
    pub fn active_keys(&self, now: u64) -> impl Iterator<Item = &K> {
        self.counters
            .iter()
            .filter(move |(_, c)| c.upper_bound(now) > 0)
            .map(|(k, _)| k)
    }

    /// Total keys ever tracked (including ones whose events have all
    /// expired; see [`prune`](Self::prune)).
    #[must_use]
    pub fn tracked_keys(&self) -> usize {
        self.counters.len()
    }

    /// Total DGIM buckets across all keys — the structure's space, and
    /// the denominator of any error-vs-space comparison against exact
    /// per-event retention.
    #[must_use]
    pub fn total_buckets(&self) -> usize {
        self.counters
            .values()
            .map(SlidingWindowCounter::bucket_count)
            .sum()
    }

    /// Drops counters with no in-window events at `now`, bounding space
    /// to the active key set.
    pub fn prune(&mut self, now: u64) {
        self.counters.retain(|_, c| c.upper_bound(now) > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Exact per-key sliding counts for cross-checking.
    struct Exact {
        window: u64,
        events: BTreeMap<u64, VecDeque<u64>>,
    }

    impl Exact {
        fn new(window: u64) -> Self {
            Exact {
                window,
                events: BTreeMap::new(),
            }
        }

        fn record(&mut self, key: u64, time: u64) {
            self.events.entry(key).or_default().push_back(time);
        }

        fn count(&self, key: u64, now: u64) -> u64 {
            let Some(evs) = self.events.get(&key) else {
                return 0;
            };
            evs.iter().filter(|&&t| t + self.window > now).count() as u64
        }

        fn distinct(&self, now: u64) -> u64 {
            self.events
                .keys()
                .filter(|&&k| self.count(k, now) > 0)
                .count() as u64
        }
    }

    #[test]
    fn counts_expire_and_distinct_tracks_exactly() {
        let mut keyed = KeyedDistinctCounter::new(10, 0.5);
        keyed.record(1, 0);
        keyed.record(2, 3);
        keyed.record(1, 5);
        assert_eq!(keyed.distinct_active(5), 2);
        assert_eq!(keyed.estimate(&3, 5), 0);
        // At now=12 key 1's event@0 expired but @5 survives; key 2 expired
        // at now=13.
        assert_eq!(keyed.distinct_active(13), 1);
        assert_eq!(keyed.active_keys(13).collect::<Vec<_>>(), [&1]);
        assert_eq!(keyed.distinct_active(15), 0);
        assert_eq!(keyed.tracked_keys(), 2);
        keyed.prune(15);
        assert_eq!(keyed.tracked_keys(), 0);
        assert_eq!(keyed.latest(), 5);
    }

    #[test]
    fn space_stays_sublinear_in_events() {
        let mut keyed = KeyedDistinctCounter::new(1 << 16, 0.25);
        for t in 0..100_000u64 {
            keyed.record(t % 8, t);
        }
        // 100k events over 8 keys collapse into a few hundred buckets.
        assert!(
            keyed.total_buckets() < 8 * 120,
            "buckets = O(k/eps * log^2 W)"
        );
        assert_eq!(keyed.distinct_active(100_000), 8);
    }

    proptest! {
        /// The satellite's pinned guarantee: for every key the estimate
        /// stays inside the (1 ± ε) envelope of the exact count, the
        /// bounds bracket the truth, and the distinct-key count is exact.
        #[test]
        fn per_key_envelope_holds(
            steps in proptest::collection::vec((0u64..6, 0u64..5), 1..300),
            window in 1u64..256,
            eps_tenths in 1u32..10,
        ) {
            let eps = f64::from(eps_tenths) / 10.0;
            let mut keyed = KeyedDistinctCounter::new(window, eps);
            let mut exact = Exact::new(window);
            let mut now = 0u64;
            for &(gap, key) in &steps {
                now += gap;
                keyed.record(key, now);
                exact.record(key, now);
            }
            for probe in [now, now + window / 2, now + window] {
                prop_assert_eq!(
                    keyed.distinct_active(probe),
                    exact.distinct(probe),
                    "distinct-active must be exact at now={}", probe
                );
                for key in 0u64..5 {
                    let truth = exact.count(key, probe);
                    let est = keyed.estimate(&key, probe);
                    let (lo, hi) = keyed.bounds(&key, probe);
                    prop_assert!(lo <= truth && truth <= hi,
                        "true {} outside [{}, {}] for key {} at {}", truth, lo, hi, key, probe);
                    let err = est.abs_diff(truth);
                    let bound = (eps * truth as f64).floor() + 1.0;
                    prop_assert!((err as f64) <= bound,
                        "key {}: estimate {} vs true {}: err {} > eps*N+1 = {}",
                        key, est, truth, err, bound);
                }
            }
        }
    }
}
