//! Deterministic 64-bit mixing used for node identities and the randomized
//! folding tree's coin flips.
//!
//! The trees need hashes that are stable across runs and platforms (they
//! determine memo-cache identities and the probabilistic group boundaries of
//! [`crate::RandomizedFoldingTree`]), so we use a fixed splitmix64-based
//! mixer rather than `std`'s randomly-seeded `DefaultHasher`.

/// Finalizer of splitmix64; a strong 64-bit bit mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a single 64-bit value into a well-distributed hash.
///
/// ```
/// let h = slider_core::hash_one(42);
/// assert_ne!(h, slider_core::hash_one(43));
/// ```
#[inline]
pub fn hash_one(x: u64) -> u64 {
    mix64(x)
}

/// Combines two 64-bit hashes into one, order-sensitively.
///
/// Used to derive the identity of an internal contraction-tree node from the
/// identities of its children, so that identical (left, right) pairs map to
/// the same memoized sub-computation across runs.
///
/// ```
/// let ab = slider_core::hash_pair(1, 2);
/// let ba = slider_core::hash_pair(2, 1);
/// assert_ne!(ab, ba);
/// ```
#[inline]
pub fn hash_pair(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b).rotate_left(23).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// An incremental, deterministic 64-bit hasher over a stream of words.
///
/// Unlike `std::hash::DefaultHasher` the result is stable across processes,
/// which the memoization layer relies on.
///
/// ```
/// use slider_core::StableHasher;
/// let mut h = StableHasher::new();
/// h.write_u64(7);
/// h.write_bytes(b"slider");
/// let a = h.finish();
/// assert_ne!(a, StableHasher::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher with a fixed initial state.
    pub fn new() -> Self {
        StableHasher {
            state: 0x51bd_e25c_7a5e_11d4,
        }
    }

    /// Feeds one 64-bit word.
    pub fn write_u64(&mut self, x: u64) {
        self.state = hash_pair(self.state, x);
    }

    /// Feeds a byte slice (length-prefixed to avoid ambiguity).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Returns the accumulated hash.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_one(i)), "collision at {i}");
        }
    }

    #[test]
    fn pair_is_order_sensitive() {
        assert_ne!(hash_pair(1, 2), hash_pair(2, 1));
        assert_ne!(hash_pair(0, 0), 0);
    }

    #[test]
    fn pair_distinguishes_nesting() {
        // hash((a,b),c) != hash(a,(b,c)) — association must matter for
        // node identities.
        let left = hash_pair(hash_pair(1, 2), 3);
        let right = hash_pair(1, hash_pair(2, 3));
        assert_ne!(left, right);
    }

    #[test]
    fn stable_hasher_is_deterministic() {
        let mut a = StableHasher::new();
        a.write_bytes(b"hello world");
        let mut b = StableHasher::new();
        b.write_bytes(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn stable_hasher_length_prefix_disambiguates() {
        // "ab" + "c" must differ from "a" + "bc".
        let mut a = StableHasher::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = StableHasher::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_hasher_padding_no_collision() {
        let mut a = StableHasher::new();
        a.write_bytes(&[0, 0, 0]);
        let mut b = StableHasher::new();
        b.write_bytes(&[0, 0, 0, 0]);
        assert_ne!(a.finish(), b.finish());
    }
}
