//! The strawman contraction tree (paper §2.2): a position-paired binary
//! combiner tree with memoization as the *only* reuse mechanism.
//!
//! On every run the tree is re-paired from the current leaf sequence; a
//! node is reused only when the exact (left, right) identity pair was
//! memoized by an earlier run. Because a sliding window removes leaves from
//! the *front*, the pairing alignment of every subsequent leaf shifts and
//! most identities change — so the strawman performs work linear in the
//! window for front-removals, which is precisely the limitation (§2.1) that
//! motivates the self-adjusting trees. It remains efficient for pure
//! appends that preserve alignment and for in-place leaf replacement, which
//! is why Slider still uses it for the inner stages of multi-job query
//! pipelines (§5).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::hash::{hash_one, hash_pair};
use crate::memo::MemoCache;
use crate::stats::Phase;
use crate::tree::{ContractionTree, TreeCx, TreeKind, WindowAggregator};

/// Memoization-only baseline contraction tree. See the module docs.
pub struct StrawmanTree<V> {
    /// Window leaves, oldest first, each with a stable identity.
    leaves: VecDeque<(u64, Arc<V>)>,
    /// Memoized internal nodes keyed by lineage identity.
    cache: MemoCache<V>,
    root: Option<Arc<V>>,
    next_id: u64,
    height: usize,
}

impl<V> StrawmanTree<V> {
    /// Creates an empty strawman tree.
    pub fn new() -> Self {
        StrawmanTree {
            leaves: VecDeque::new(),
            cache: MemoCache::new(),
            root: None,
            next_id: 0,
            height: 0,
        }
    }

    /// Replaces the leaf at window position `index` in place, *keeping a new
    /// identity*, and recombines. Used by multi-level query pipelines where
    /// inner-stage changes occur at arbitrary positions (§5): alignment of
    /// all other leaves is preserved, so memoization confines recomputation
    /// to one root path.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn replace_leaf<K>(&mut self, cx: &mut TreeCx<'_, K, V>, index: usize, value: Arc<V>)
    where
        V: Send + Sync,
    {
        assert!(
            index < self.leaves.len(),
            "replace_leaf: index out of bounds"
        );
        let id = self.fresh_id();
        self.leaves[index] = (id, value);
        self.recombine(cx);
    }

    /// Replaces the entire leaf sequence with caller-identified leaves and
    /// recombines, reusing memoized pairings wherever identities align.
    ///
    /// This is the workhorse of multi-level query pipelines (§5): inner
    /// pipeline stages see changes at arbitrary positions, so the caller
    /// derives each leaf's identity from its content lineage (e.g. a bucket
    /// index plus a version counter) and the memo cache confines fresh
    /// combiner work to the paths whose identities changed.
    pub fn set_leaves<K>(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<(u64, Arc<V>)>)
    where
        V: Send + Sync,
    {
        let before = self.leaves.len();
        let after = leaves.len();
        if after > before {
            cx.note_added((after - before) as u64);
        } else {
            cx.note_removed((before - after) as u64);
        }
        self.leaves = leaves.into();
        self.recombine(cx);
    }

    fn fresh_id(&mut self) -> u64 {
        let id = hash_one(self.next_id ^ 0x5eed_5eed_5eed_5eed);
        self.next_id += 1;
        id
    }

    /// Re-pairs the whole leaf sequence bottom-up, reusing memoized nodes.
    fn recombine<K>(&mut self, cx: &mut TreeCx<'_, K, V>)
    where
        V: Send + Sync,
    {
        if self.leaves.is_empty() {
            self.root = None;
            self.height = 0;
            self.cache.sweep();
            return;
        }
        let mut level: Vec<(u64, Arc<V>)> = self
            .leaves
            .iter()
            .map(|(id, v)| (*id, Arc::clone(v)))
            .collect();
        let mut height = 1;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut chunks = level.chunks_exact(2);
            for (position, pair) in (&mut chunks).enumerate() {
                let (lid, lv) = &pair[0];
                let (rid, rv) = &pair[1];
                // Memoization is at *task* granularity: a sub-computation's
                // identity is its position in the dataflow DAG plus its
                // input lineage. A window slide that shifts leaf positions
                // therefore precludes reuse — the §2.1 limitation that
                // motivates the self-adjusting trees.
                let id = hash_pair(position as u64, hash_pair(*lid, *rid));
                let value = match self.cache.get(id) {
                    Some(v) => {
                        cx.reuse(&v);
                        v
                    }
                    None => {
                        let v = cx.merge(Phase::Foreground, lv, rv);
                        self.cache.put(id, Arc::clone(&v));
                        v
                    }
                };
                next.push((id, value));
            }
            if let [(id, v)] = chunks.remainder() {
                // Odd leaf promotes unchanged — no combiner invocation.
                next.push((*id, Arc::clone(v)));
            }
            level = next;
            height += 1;
        }
        self.root = level.pop().map(|(_, v)| v);
        self.height = height;
        self.cache.sweep();
    }
}

impl<V> Default for StrawmanTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for StrawmanTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrawmanTree")
            .field("leaves", &self.leaves.len())
            .field("height", &self.height)
            .field("cached_nodes", &self.cache.len())
            .finish()
    }
}

impl<V> Clone for StrawmanTree<V> {
    fn clone(&self) -> Self {
        StrawmanTree {
            leaves: self.leaves.clone(),
            cache: self.cache.clone(),
            root: self.root.clone(),
            next_id: self.next_id,
            height: self.height,
        }
    }
}

impl<K, V> WindowAggregator<K, V> for StrawmanTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
        Box::new(self.clone())
    }

    fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
        self.leaves.clear();
        self.cache = MemoCache::new();
        for value in leaves.into_iter().flatten() {
            let id = self.fresh_id();
            self.leaves.push_back((id, value));
            cx.note_added(1);
        }
        self.recombine(cx);
    }

    fn advance(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if remove > self.leaves.len() {
            return Err(TreeError::RemoveExceedsWindow {
                requested: remove,
                window: self.leaves.len(),
            });
        }
        for _ in 0..remove {
            self.leaves.pop_front();
            cx.note_removed(1);
        }
        for value in added.into_iter().flatten() {
            let id = self.fresh_id();
            self.leaves.push_back((id, value));
            cx.note_added(1);
        }
        self.recombine(cx);
        Ok(())
    }

    fn insert_at(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        values: Vec<Arc<V>>,
    ) -> Result<(), TreeError> {
        if at > self.leaves.len() {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count: values.len(),
                window: self.leaves.len(),
            });
        }
        if values.is_empty() {
            return Ok(());
        }
        cx.note_added(values.len() as u64);
        for (j, value) in values.into_iter().enumerate() {
            let id = self.fresh_id();
            self.leaves.insert(at + j, (id, value));
        }
        // Leaves at and after the splice point change pairing position, so
        // memoization naturally confines reuse to the untouched prefix.
        self.recombine(cx);
        Ok(())
    }

    fn evict_range(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        at: usize,
        count: usize,
    ) -> Result<(), TreeError> {
        if at
            .checked_add(count)
            .is_none_or(|end| end > self.leaves.len())
        {
            return Err(TreeError::SpliceOutOfRange {
                at,
                count,
                window: self.leaves.len(),
            });
        }
        if count == 0 {
            return Ok(());
        }
        cx.note_removed(count as u64);
        self.leaves.drain(at..at + count);
        self.recombine(cx);
        Ok(())
    }

    fn root(&self) -> Option<Arc<V>> {
        self.root.clone()
    }

    fn len(&self) -> usize {
        self.leaves.len()
    }

    fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        let cached = self.cache.footprint(|v| combiner.value_bytes(key, v));
        let leaves: u64 = self
            .leaves
            .iter()
            .map(|(_, v)| combiner.value_bytes(key, v))
            .sum();
        cached + leaves
    }

    fn kind(&self) -> TreeKind {
        TreeKind::Strawman
    }
}

impl<K, V> ContractionTree<K, V> for StrawmanTree<V>
where
    K: Send + 'static,
    V: Send + Sync + 'static,
{
    fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    #[test]
    fn initial_run_computes_total() {
        let combiner = sum_combiner();
        let mut stats = UpdateStats::default();
        let key = 0u8;
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        let mut tree = StrawmanTree::new();
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4, 5]));
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 15);
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 5);
        // 5 leaves need 4 merges regardless of shape.
        assert_eq!(stats.foreground.merges, 4);
    }

    #[test]
    fn pure_append_reuses_aligned_subtrees() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3, 4]));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 0, leaves(&[5, 6])).unwrap();
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 21);
        // (1,2) and (3,4) pairs are unchanged: both reused.
        assert!(stats.reused >= 2, "reused = {}", stats.reused);
        // Only (5,6) and the two upper joins are fresh.
        assert!(
            stats.foreground.merges <= 3,
            "merges = {}",
            stats.foreground.merges
        );
    }

    #[test]
    fn front_removal_degrades_to_linear() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();

        let values: Vec<u64> = (0..64).collect();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&values));

        // Drop one leaf from the front: alignment shifts everywhere.
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, vec![]).unwrap();
        assert_eq!(
            *WindowAggregator::<u8, u64>::root(&tree).unwrap(),
            (0..64).skip(1).sum::<u64>()
        );
        // Nearly every pair is new: the strawman does Θ(n) merges.
        assert!(
            stats.foreground.merges >= 32,
            "merges = {}",
            stats.foreground.merges
        );
    }

    #[test]
    fn replace_leaf_recomputes_one_path() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();

        let values: Vec<u64> = (0..32).collect();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&values));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.replace_leaf(&mut cx, 7, Arc::new(100));
        let expected: u64 = (0..32).map(|v| if v == 7 { 100 } else { v }).sum();
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), expected);
        // Only the log-depth path to the root is recomputed.
        assert!(
            stats.foreground.merges <= 5,
            "merges = {}",
            stats.foreground.merges
        );
    }

    #[test]
    fn remove_too_many_errors_and_preserves_tree() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&[1, 2]));
        let err = tree.advance(&mut cx, 3, vec![]).unwrap_err();
        assert_eq!(
            err,
            TreeError::RemoveExceedsWindow {
                requested: 3,
                window: 2
            }
        );
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 3);
    }

    #[test]
    fn drain_to_empty() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
        tree.advance(&mut cx, 3, vec![]).unwrap();
        assert!(WindowAggregator::<u8, u64>::root(&tree).is_none());
        assert_eq!(ContractionTree::<u8, u64>::height(&tree), 0);
        assert!(WindowAggregator::<u8, u64>::is_empty(&tree));
    }

    #[test]
    fn none_leaves_are_skipped() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = StrawmanTree::new();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(
            &mut cx,
            vec![Some(Arc::new(1)), None, Some(Arc::new(2)), None],
        );
        assert_eq!(WindowAggregator::<u8, u64>::len(&tree), 2);
        assert_eq!(*WindowAggregator::<u8, u64>::root(&tree).unwrap(), 3);
    }
}
