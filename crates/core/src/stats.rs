//! Work accounting for contraction-tree updates.
//!
//! The paper's evaluation distinguishes *foreground* processing (on the
//! critical path of producing an updated output) from *background
//! pre-processing* (§4's split processing mode, run on a best-effort basis
//! after the result was returned). [`UpdateStats`] keeps the two separate so
//! the host engine can charge them to different phases of the simulated
//! cluster schedule.

use std::ops::AddAssign;

/// Which processing phase a combiner invocation is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// On the critical path of the current incremental run.
    Foreground,
    /// Best-effort pre-processing for the *next* incremental run.
    Background,
}

/// Work performed in one phase: number of combiner invocations and their
/// modeled cost in abstract work units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWork {
    /// Number of combiner (merge) invocations executed.
    pub merges: u64,
    /// Total modeled cost of those invocations, in work units.
    pub work: u64,
}

impl PhaseWork {
    /// Records one merge of the given cost.
    pub fn record(&mut self, cost: u64) {
        self.merges += 1;
        self.work += cost;
    }

    /// True if no work was recorded.
    pub fn is_empty(&self) -> bool {
        self.merges == 0 && self.work == 0
    }
}

impl AddAssign for PhaseWork {
    fn add_assign(&mut self, rhs: PhaseWork) {
        self.merges += rhs.merges;
        self.work += rhs.work;
    }
}

/// Statistics accumulated over one or more contraction-tree operations.
///
/// ```
/// use slider_core::{Phase, UpdateStats};
/// let mut stats = UpdateStats::default();
/// stats.phase_mut(Phase::Foreground).record(10);
/// stats.reused += 3;
/// assert_eq!(stats.foreground.work, 10);
/// assert_eq!(stats.total_merges(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Merges executed on the critical path.
    pub foreground: PhaseWork,
    /// Merges executed as background pre-processing (split mode).
    pub background: PhaseWork,
    /// Memoized sub-computations reused instead of re-executed: untouched
    /// siblings consumed along recompute paths plus memo-cache hits.
    pub reused: u64,
    /// Leaves appended across the recorded operations.
    pub leaves_added: u64,
    /// Leaves dropped across the recorded operations.
    pub leaves_removed: u64,
    /// Modeled bytes of freshly produced (and hence memoized) aggregates,
    /// per the combiner's `value_bytes`. Feeds the memoization-I/O part of
    /// the work model.
    pub bytes_written: u64,
    /// Modeled bytes of memoized aggregates read (reused) along recompute
    /// paths.
    pub bytes_read: u64,
}

impl UpdateStats {
    /// Mutable access to the accumulator for `phase`.
    pub fn phase_mut(&mut self, phase: Phase) -> &mut PhaseWork {
        match phase {
            Phase::Foreground => &mut self.foreground,
            Phase::Background => &mut self.background,
        }
    }

    /// Total merges across both phases.
    pub fn total_merges(&self) -> u64 {
        self.foreground.merges + self.background.merges
    }

    /// Total modeled work across both phases.
    pub fn total_work(&self) -> u64 {
        self.foreground.work + self.background.work
    }

    /// Folds another statistics record into this one.
    pub fn merge_from(&mut self, other: &UpdateStats) {
        self.foreground += other.foreground;
        self.background += other.background;
        self.reused += other.reused;
        self.leaves_added += other.leaves_added;
        self.leaves_removed += other.leaves_removed;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
    }

    /// Folds per-shard statistics, in iteration order, into one record.
    ///
    /// The fold is plain integer addition over a caller-fixed order
    /// (shard index), so the total is identical no matter how many worker
    /// threads produced the parts — the invariant the parallel runtime
    /// relies on for bitwise-deterministic work metering.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a UpdateStats>) -> UpdateStats {
        let mut total = UpdateStats::default();
        for part in parts {
            total.merge_from(part);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut w = PhaseWork::default();
        w.record(5);
        w.record(7);
        assert_eq!(
            w,
            PhaseWork {
                merges: 2,
                work: 12
            }
        );
        assert!(!w.is_empty());
    }

    #[test]
    fn phase_mut_routes_to_right_accumulator() {
        let mut s = UpdateStats::default();
        s.phase_mut(Phase::Background).record(4);
        assert!(s.foreground.is_empty());
        assert_eq!(s.background.work, 4);
        assert_eq!(s.total_work(), 4);
    }

    #[test]
    fn merged_folds_parts_in_order() {
        let mut a = UpdateStats::default();
        a.phase_mut(Phase::Foreground).record(2);
        a.bytes_written = 10;
        let mut b = UpdateStats::default();
        b.phase_mut(Phase::Background).record(3);
        b.bytes_read = 4;
        let total = UpdateStats::merged([&a, &b]);
        assert_eq!(total.total_work(), 5);
        assert_eq!(total.bytes_written, 10);
        assert_eq!(total.bytes_read, 4);
        assert_eq!(total, UpdateStats::merged([&b, &a]), "addition commutes");
    }

    #[test]
    fn merge_from_sums_everything() {
        let mut a = UpdateStats::default();
        a.phase_mut(Phase::Foreground).record(1);
        a.leaves_added = 2;
        let mut b = UpdateStats::default();
        b.phase_mut(Phase::Background).record(3);
        b.reused = 5;
        b.leaves_removed = 1;
        a.merge_from(&b);
        assert_eq!(a.total_merges(), 2);
        assert_eq!(a.total_work(), 4);
        assert_eq!(a.reused, 5);
        assert_eq!(a.leaves_added, 2);
        assert_eq!(a.leaves_removed, 1);
    }
}
