//! Constant-time twin-stack window aggregators (the DABA line).
//!
//! Unlike the contraction trees, these structures memoize **running partial
//! sums** instead of interior tree nodes. The window is held as up to three
//! consecutive segments, oldest first:
//!
//! ```text
//!   front                 mid (frozen, under repair)     back (growing)
//!   [suffix-agg stack] ++ [pending raws | done stack] ++ [raw leaves]
//! ```
//!
//! * The **back** collects inserted leaves together with one running prefix
//!   aggregate, so extending the window is one merge.
//! * The **front** is a stack of `(leaf, suffix aggregate)` entries with the
//!   oldest leaf on top; evicting pops the stack and the next entry's stored
//!   suffix aggregate *is* the remaining segment's total — a pure
//!   memoization hit, no merges.
//! * The window total is `front ⊕ mid ⊕ back`, at most two merges.
//!
//! When the front runs dry the back must *flip* into suffix form. The
//! amortized [`TwoStackTree`] performs the whole flip at once (the classic
//! two-stack queue reduction). [`DabaTree`] and [`DabaLiteTree`] de-amortize
//! it in the style of DABA (arXiv 2009.13768): once the back has grown to
//! the size of the front, it is *frozen* as the mid segment and repaired into
//! suffix form one merge per subsequent operation, so the replacement front
//! is ready exactly when the old one is exhausted. For balanced in-order
//! sliding (equal insert and evict rates — the engine's window discipline)
//! every operation performs a worst-case-constant number of merges; for
//! adversarial insert floods a residual flip remains and the bound is
//! amortized, which the unit tests pin down.
//!
//! [`DabaLiteTree`] is the memory-lean variant: it drops the raw leaf from
//! every repaired entry (the suffix aggregate is all eviction and query ever
//! need), roughly halving the memoization footprint that the distributed
//! cache replicates.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::combiner::Combiner;
use crate::error::TreeError;
use crate::stats::Phase;
use crate::tree::{TreeCx, TreeKind, WindowAggregator};

/// One repaired entry: the suffix aggregate from this leaf to the end of its
/// segment, plus (for the non-lite variants) the raw leaf it came from.
struct Entry<V> {
    /// The raw leaf; `None` in the lite layout once the aggregate exists.
    val: Option<Arc<V>>,
    /// Aggregate of this leaf through the newest leaf of its segment.
    agg: Arc<V>,
}

// Manual: entries share their `Arc`ed values, so no `V: Clone` is needed.
impl<V> Clone for Entry<V> {
    fn clone(&self) -> Self {
        Entry {
            val: self.val.clone(),
            agg: Arc::clone(&self.agg),
        }
    }
}

/// Folds the present aggregates oldest-to-newest, charging each merge to the
/// foreground phase. Order matters: the combiners are not assumed
/// commutative.
fn fold_present<K, V>(
    cx: &mut TreeCx<'_, K, V>,
    parts: impl IntoIterator<Item = Option<Arc<V>>>,
) -> Option<Arc<V>> {
    let mut acc: Option<Arc<V>> = None;
    for part in parts.into_iter().flatten() {
        acc = Some(match acc {
            None => part,
            Some(prev) => cx.merge(Phase::Foreground, &prev, &part),
        });
    }
    acc
}

/// Shared twin-stack state machine behind all three public aggregators.
struct TwinStacks<V> {
    /// Oldest segment; a stack with the oldest leaf on top (= last).
    front: Vec<Entry<V>>,
    /// Frozen segment still awaiting repair, oldest leaf first; the repair
    /// consumes it from the back (newest first).
    mid_pending: VecDeque<Arc<V>>,
    /// Repaired part of the frozen segment; stack, oldest-processed on top.
    mid_done: Vec<Entry<V>>,
    /// Total of the whole frozen segment, captured at freeze time.
    mid_agg: Option<Arc<V>>,
    /// Newest segment, oldest leaf first.
    back: VecDeque<Arc<V>>,
    /// Running total of `back`.
    back_agg: Option<Arc<V>>,
    /// Cached window total, refreshed at the end of every mutation.
    root: Option<Arc<V>>,
    /// Whether flips are repaired incrementally (DABA) or all at once
    /// (classic two-stack).
    paced: bool,
    /// Whether repaired entries drop their raw leaf (DABA Lite).
    lite: bool,
}

impl<V> Clone for TwinStacks<V> {
    fn clone(&self) -> Self {
        TwinStacks {
            front: self.front.clone(),
            mid_pending: self.mid_pending.clone(),
            mid_done: self.mid_done.clone(),
            mid_agg: self.mid_agg.clone(),
            back: self.back.clone(),
            back_agg: self.back_agg.clone(),
            root: self.root.clone(),
            paced: self.paced,
            lite: self.lite,
        }
    }
}

impl<V> TwinStacks<V> {
    fn new(paced: bool, lite: bool) -> Self {
        TwinStacks {
            front: Vec::new(),
            mid_pending: VecDeque::new(),
            mid_done: Vec::new(),
            mid_agg: None,
            back: VecDeque::new(),
            back_agg: None,
            root: None,
            paced,
            lite,
        }
    }

    fn len(&self) -> usize {
        self.front.len() + self.mid_pending.len() + self.mid_done.len() + self.back.len()
    }

    fn clear(&mut self) {
        self.front.clear();
        self.mid_pending.clear();
        self.mid_done.clear();
        self.mid_agg = None;
        self.back.clear();
        self.back_agg = None;
        self.root = None;
    }

    fn entry(&self, val: Arc<V>, agg: Arc<V>) -> Entry<V> {
        Entry {
            val: (!self.lite).then_some(val),
            agg,
        }
    }

    /// Performs one step of the incremental flip: moves the newest pending
    /// leaf into the repaired stack, extending its suffix aggregate by one
    /// merge (the newest leaf of a segment seeds for free).
    fn repair_step<K>(&mut self, cx: &mut TreeCx<'_, K, V>) {
        let Some(v) = self.mid_pending.pop_back() else {
            return;
        };
        let agg = match self.mid_done.last() {
            Some(newer) => cx.merge(Phase::Foreground, &v, &newer.agg),
            None => Arc::clone(&v),
        };
        let entry = self.entry(v, agg);
        self.mid_done.push(entry);
    }

    /// Freezes the back as the new mid segment once the mid is empty and the
    /// back has caught up with the front — the moment that leaves exactly
    /// one repair step per remaining front eviction.
    fn maybe_freeze(&mut self) {
        if self.mid_pending.is_empty()
            && self.mid_done.is_empty()
            && !self.back.is_empty()
            && self.back.len() >= self.front.len()
        {
            self.mid_pending = std::mem::take(&mut self.back);
            self.mid_agg = self.back_agg.take();
        }
    }

    /// Replaces an exhausted front with the repaired mid segment, forcing
    /// any residual repair to completion first (free under balanced pacing).
    fn flip<K>(&mut self, cx: &mut TreeCx<'_, K, V>) {
        debug_assert!(self.front.is_empty());
        if self.mid_pending.is_empty() && self.mid_done.is_empty() {
            self.mid_pending = std::mem::take(&mut self.back);
            self.mid_agg = self.back_agg.take();
        }
        while !self.mid_pending.is_empty() {
            self.repair_step(cx);
        }
        self.front = std::mem::take(&mut self.mid_done);
        self.mid_agg = None;
    }

    fn evict<K>(&mut self, cx: &mut TreeCx<'_, K, V>) {
        if self.front.is_empty() {
            self.flip(cx);
        }
        self.front.pop();
        // The exposed suffix aggregate is the memoized total of the
        // remaining segment — the structure's payoff on every eviction.
        if let Some(top) = self.front.last() {
            cx.reuse(&top.agg);
        }
        if self.paced {
            self.repair_step(cx);
        }
        self.maybe_freeze();
    }

    fn insert<K>(&mut self, cx: &mut TreeCx<'_, K, V>, v: Arc<V>) {
        self.back_agg = Some(match self.back_agg.take() {
            Some(acc) => cx.merge(Phase::Foreground, &acc, &v),
            None => Arc::clone(&v),
        });
        self.back.push_back(v);
        if self.paced {
            self.repair_step(cx);
            self.maybe_freeze();
        }
    }

    fn refresh_root<K>(&mut self, cx: &mut TreeCx<'_, K, V>) {
        let front_agg = self.front.last().map(|e| Arc::clone(&e.agg));
        self.root = fold_present(cx, [front_agg, self.mid_agg.clone(), self.back_agg.clone()]);
    }

    fn rebuild<K>(&mut self, cx: &mut TreeCx<'_, K, V>, live: Vec<Arc<V>>) {
        self.clear();
        // Initial run: the whole window lands as one fully repaired front,
        // suffix aggregates built newest-to-oldest.
        let mut acc: Option<Arc<V>> = None;
        for v in live.into_iter().rev() {
            let agg = match &acc {
                Some(newer) => cx.merge(Phase::Foreground, &v, newer),
                None => Arc::clone(&v),
            };
            acc = Some(Arc::clone(&agg));
            let entry = self.entry(v, agg);
            self.front.push(entry);
        }
        self.root = acc;
    }

    fn advance<K>(
        &mut self,
        cx: &mut TreeCx<'_, K, V>,
        remove: usize,
        added: Vec<Option<Arc<V>>>,
    ) -> Result<(), TreeError> {
        if remove > self.len() {
            return Err(TreeError::RemoveExceedsWindow {
                requested: remove,
                window: self.len(),
            });
        }
        let added: Vec<Arc<V>> = added.into_iter().flatten().collect();
        cx.note_removed(remove as u64);
        cx.note_added(added.len() as u64);
        for _ in 0..remove {
            self.evict(cx);
        }
        for v in added {
            self.insert(cx, v);
        }
        self.refresh_root(cx);
        Ok(())
    }

    /// Counts each distinct memoized allocation once (entries at a segment
    /// boundary share the leaf's allocation with their aggregate).
    fn memo_bytes<K>(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
        let mut seen: HashSet<*const V> = HashSet::new();
        let mut bytes = 0u64;
        let mut count = |v: &Arc<V>, seen: &mut HashSet<*const V>| {
            if seen.insert(Arc::as_ptr(v)) {
                bytes += combiner.value_bytes(key, v);
            }
        };
        for entry in self.front.iter().chain(&self.mid_done) {
            if let Some(val) = &entry.val {
                count(val, &mut seen);
            }
            count(&entry.agg, &mut seen);
        }
        for v in self.mid_pending.iter().chain(&self.back) {
            count(v, &mut seen);
        }
        for acc in [&self.mid_agg, &self.back_agg].into_iter().flatten() {
            count(acc, &mut seen);
        }
        bytes
    }

    fn debug(&self, name: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct(name)
            .field("front", &self.front.len())
            .field("mid_pending", &self.mid_pending.len())
            .field("mid_done", &self.mid_done.len())
            .field("back", &self.back.len())
            .finish()
    }
}

macro_rules! twin_stack_aggregator {
    ($name:ident, $kind:expr, $paced:expr, $lite:expr, $doc:expr) => {
        #[doc = $doc]
        pub struct $name<V> {
            core: TwinStacks<V>,
        }

        impl<V> $name<V> {
            /// Creates an empty aggregator.
            pub fn new() -> Self {
                $name {
                    core: TwinStacks::new($paced, $lite),
                }
            }
        }

        impl<V> Default for $name<V> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<V> fmt::Debug for $name<V> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.core.debug(stringify!($name), f)
            }
        }

        impl<V> Clone for $name<V> {
            fn clone(&self) -> Self {
                $name {
                    core: self.core.clone(),
                }
            }
        }

        impl<K, V> WindowAggregator<K, V> for $name<V>
        where
            K: Send + 'static,
            V: Send + Sync + 'static,
        {
            fn boxed_clone(&self) -> Box<dyn WindowAggregator<K, V>> {
                Box::new(self.clone())
            }

            fn rebuild(&mut self, cx: &mut TreeCx<'_, K, V>, leaves: Vec<Option<Arc<V>>>) {
                let live: Vec<Arc<V>> = leaves.into_iter().flatten().collect();
                cx.note_added(live.len() as u64);
                self.core.rebuild(cx, live);
            }

            fn advance(
                &mut self,
                cx: &mut TreeCx<'_, K, V>,
                remove: usize,
                added: Vec<Option<Arc<V>>>,
            ) -> Result<(), TreeError> {
                self.core.advance(cx, remove, added)
            }

            fn root(&self) -> Option<Arc<V>> {
                self.core.root.clone()
            }

            fn len(&self) -> usize {
                self.core.len()
            }

            fn memo_bytes(&self, combiner: &dyn Combiner<K, V>, key: &K) -> u64 {
                self.core.memo_bytes(combiner, key)
            }

            fn kind(&self) -> TreeKind {
                $kind
            }
        }
    };
}

twin_stack_aggregator!(
    TwoStackTree,
    TreeKind::TwoStack,
    false,
    false,
    "Classic two-stack sliding-window aggregator: amortized O(1) merges per \
     in-order operation, with the whole back flipped into suffix form when \
     the front runs dry."
);

twin_stack_aggregator!(
    DabaTree,
    TreeKind::Daba,
    true,
    false,
    "De-amortized twin-stack aggregator in the DABA mould (arXiv \
     2009.13768): the flip is repaired one merge per operation, so balanced \
     in-order slides perform a worst-case-constant number of merges."
);

twin_stack_aggregator!(
    DabaLiteTree,
    TreeKind::DabaLite,
    true,
    true,
    "Memory-lean DABA variant: repaired entries keep only the partial sum \
     (never the raw leaf), shrinking the memoization footprint the \
     distributed cache has to replicate."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::FnCombiner;
    use crate::stats::UpdateStats;
    use crate::tree::build_tree;

    fn sum_combiner() -> FnCombiner<impl Fn(&u8, &u64, &u64) -> u64> {
        FnCombiner::new(|_: &u8, a: &u64, b: &u64| a + b)
    }

    fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
        values.iter().map(|v| Some(Arc::new(*v))).collect()
    }

    /// Drives `kind` through a mixed slide history and checks the root
    /// against a naive VecDeque reference after every step.
    fn check_against_reference(kind: TreeKind, slides: &[(usize, Vec<u64>)]) {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut tree = build_tree::<u8, u64>(kind, 0);
        let mut reference: VecDeque<u64> = VecDeque::new();

        for (step, (remove, added)) in slides.iter().enumerate() {
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let remove = (*remove).min(reference.len());
            tree.advance(&mut cx, remove, leaves(added)).unwrap();
            for _ in 0..remove {
                reference.pop_front();
            }
            reference.extend(added);
            let expected: u64 = reference.iter().sum();
            match tree.root() {
                Some(root) => assert_eq!(*root, expected, "{kind} diverged at step {step}"),
                None => assert_eq!(expected, 0, "{kind} empty at step {step}"),
            }
            assert_eq!(tree.len(), reference.len(), "{kind} len at step {step}");
        }
    }

    #[test]
    fn all_three_match_reference_on_mixed_slides() {
        let slides: Vec<(usize, Vec<u64>)> = vec![
            (0, (1..=9).collect()),
            (3, vec![10, 11]),
            (2, vec![]),
            (0, vec![12, 13, 14, 15]),
            (6, vec![16]),
            (5, vec![17, 18, 19]),
            (3, vec![]),
            (0, vec![20]),
            (1, vec![21, 22]),
        ];
        for kind in [TreeKind::TwoStack, TreeKind::Daba, TreeKind::DabaLite] {
            check_against_reference(kind, &slides);
        }
    }

    #[test]
    fn non_commutative_order_is_preserved() {
        // Concatenation distinguishes every ordering.
        let combiner = FnCombiner::new(|_: &u8, a: &String, b: &String| format!("{a}{b}"));
        let key = 0u8;
        for kind in [TreeKind::TwoStack, TreeKind::Daba, TreeKind::DabaLite] {
            let mut stats = UpdateStats::default();
            let mut tree = build_tree::<u8, String>(kind, 0);
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let window: Vec<Option<Arc<String>>> = ["a", "b", "c", "d", "e"]
                .iter()
                .map(|s| Some(Arc::new(s.to_string())))
                .collect();
            tree.rebuild(&mut cx, window);
            assert_eq!(*tree.root().unwrap(), "abcde", "{kind}");
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(
                &mut cx,
                2,
                vec![
                    Some(Arc::new("f".to_string())),
                    Some(Arc::new("g".to_string())),
                ],
            )
            .unwrap();
            assert_eq!(*tree.root().unwrap(), "cdefg", "{kind}");
        }
    }

    /// Steady-state balanced slides: the paced variants must stay below a
    /// small constant number of merges per operation at *every* window size
    /// — the worst-case O(1) claim.
    #[test]
    fn daba_merges_per_slide_are_flat_across_window_sizes() {
        for kind in [TreeKind::Daba, TreeKind::DabaLite] {
            let mut per_window = Vec::new();
            for n in [64u64, 512, 4096] {
                let combiner = sum_combiner();
                let key = 0u8;
                let mut stats = UpdateStats::default();
                let mut tree = build_tree::<u8, u64>(kind, 0);
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.rebuild(&mut cx, leaves(&(0..n).collect::<Vec<_>>()));

                let mut worst = 0u64;
                let slides = 3 * n;
                let mut total = 0u64;
                for i in 0..slides {
                    let mut step_stats = UpdateStats::default();
                    let mut cx = TreeCx::new(&combiner, &key, &mut step_stats);
                    tree.advance(&mut cx, 1, leaves(&[n + i])).unwrap();
                    worst = worst.max(step_stats.foreground.merges);
                    total += step_stats.foreground.merges;
                }
                assert!(
                    worst <= 6,
                    "{kind}: {worst} merges in one slide at window {n}"
                );
                #[allow(clippy::cast_precision_loss)]
                per_window.push(total as f64 / slides as f64);
            }
            let spread = per_window.iter().fold(0.0f64, |a, &b| a.max(b))
                / per_window.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            assert!(
                spread < 1.1,
                "{kind}: per-slide merges not flat across window sizes: {per_window:?}"
            );
        }
    }

    #[test]
    fn twostack_is_amortized_constant() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = build_tree::<u8, u64>(TreeKind::TwoStack, 0);
        for n in [256u64, 2048] {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&(0..n).collect::<Vec<_>>()));
            let mut total = UpdateStats::default();
            for i in 0..2 * n {
                let mut step = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut step);
                tree.advance(&mut cx, 1, leaves(&[n + i])).unwrap();
                total.merge_from(&step);
            }
            assert!(
                total.foreground.merges <= 8 * n,
                "two-stack not amortized O(1): {} merges over {} slides",
                total.foreground.merges,
                2 * n
            );
        }
    }

    #[test]
    fn lite_footprint_is_smaller_than_full_daba() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut footprints = Vec::new();
        for kind in [TreeKind::Daba, TreeKind::DabaLite] {
            let mut stats = UpdateStats::default();
            let mut tree = build_tree::<u8, u64>(kind, 0);
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&(0..64).collect::<Vec<_>>()));
            for i in 0..96u64 {
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.advance(&mut cx, 1, leaves(&[64 + i])).unwrap();
            }
            footprints.push(tree.memo_bytes(&combiner, &key));
        }
        assert!(
            footprints[1] < footprints[0],
            "lite footprint {} not below full {}",
            footprints[1],
            footprints[0]
        );
    }

    #[test]
    fn remove_beyond_window_is_rejected_without_mutation() {
        let combiner = sum_combiner();
        let key = 0u8;
        for kind in [TreeKind::TwoStack, TreeKind::Daba, TreeKind::DabaLite] {
            let mut stats = UpdateStats::default();
            let mut tree = build_tree::<u8, u64>(kind, 0);
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&[1, 2, 3]));
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            let err = tree.advance(&mut cx, 4, Vec::new()).unwrap_err();
            assert!(matches!(
                err,
                TreeError::RemoveExceedsWindow {
                    requested: 4,
                    window: 3
                }
            ));
            assert_eq!(*tree.root().unwrap(), 6, "{kind} mutated on error");
            assert_eq!(tree.len(), 3);
        }
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let combiner = sum_combiner();
        let key = 0u8;
        for kind in [TreeKind::TwoStack, TreeKind::Daba, TreeKind::DabaLite] {
            let mut stats = UpdateStats::default();
            let mut tree = build_tree::<u8, u64>(kind, 0);
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&[5, 6]));
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, 2, Vec::new()).unwrap();
            assert!(tree.root().is_none(), "{kind}");
            assert!(tree.is_empty(), "{kind}");
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, 0, leaves(&[7, 8, 9])).unwrap();
            assert_eq!(*tree.root().unwrap(), 24, "{kind}");
        }
    }

    #[test]
    fn absent_leaves_are_skipped() {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut stats = UpdateStats::default();
        let mut tree = build_tree::<u8, u64>(TreeKind::Daba, 0);
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(
            &mut cx,
            vec![Some(Arc::new(1)), None, Some(Arc::new(2)), None],
        );
        assert_eq!(tree.len(), 2);
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, vec![None, Some(Arc::new(4))])
            .unwrap();
        assert_eq!(*tree.root().unwrap(), 6);
    }
}
