//! Empirical checks of the asymptotic claims in the paper (§3–§4 and the
//! companion analysis): per-slide combiner work must grow logarithmically
//! — not linearly — with the window for the self-adjusting trees, and
//! linearly for the strawman under alignment-shifting slides.

#![deny(clippy::cast_possible_truncation)]

use std::sync::Arc;

use slider_core::{build_tree, FnCombiner, TreeCx, TreeKind, UpdateStats};

fn leaves(range: std::ops::Range<u64>) -> Vec<Option<Arc<u64>>> {
    range.map(|v| Some(Arc::new(v))).collect()
}

/// Average merges per single-leaf slide at window size `n`.
fn merges_per_slide(kind: TreeKind, n: u64) -> f64 {
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    let mut tree = build_tree::<u8, u64>(kind, usize::try_from(n).unwrap());
    let mut stats = UpdateStats::default();
    let mut cx = TreeCx::new(&combiner, &key, &mut stats);
    tree.rebuild(&mut cx, leaves(0..n));

    let rounds = 32u64;
    let mut total = 0u64;
    for i in 0..rounds {
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, leaves(n + i..n + i + 1)).unwrap();
        total += stats.foreground.merges;
    }
    total as f64 / rounds as f64
}

#[test]
fn folding_tree_slides_scale_logarithmically() {
    let small = merges_per_slide(TreeKind::Folding, 256);
    let large = merges_per_slide(TreeKind::Folding, 4096);
    // 16x the window must cost roughly +log2(16) = +4 levels, nowhere near
    // 16x the merges.
    assert!(
        large < small + 12.0,
        "folding: {small} merges at 256 leaves vs {large} at 4096 — not logarithmic"
    );
    assert!(large < 4.0 * small, "folding grew superlogarithmically");
}

#[test]
fn rotating_tree_slides_scale_logarithmically() {
    let small = merges_per_slide(TreeKind::Rotating, 256);
    let large = merges_per_slide(TreeKind::Rotating, 4096);
    assert!(
        large <= small + 5.0,
        "rotating: {small} at 256 vs {large} at 4096 — path must be log(buckets)"
    );
}

#[test]
fn randomized_tree_slides_scale_logarithmically() {
    let small = merges_per_slide(TreeKind::RandomizedFolding, 256);
    let large = merges_per_slide(TreeKind::RandomizedFolding, 4096);
    assert!(
        large < 3.0 * small,
        "randomized: {small} at 256 vs {large} at 4096 — expected O(log) growth"
    );
}

#[test]
fn constant_time_aggregators_stay_flat_while_trees_grow() {
    // The O(1)-vs-O(log n) crossover the companion analysis predicts: the
    // twin-stack aggregators must show *flat* per-slide work across a 16x
    // window growth while the folding tree pays for its deeper root path.
    for kind in [TreeKind::Daba, TreeKind::DabaLite, TreeKind::TwoStack] {
        let small = merges_per_slide(kind, 256);
        let large = merges_per_slide(kind, 4096);
        assert!(
            (large - small).abs() <= 1.0,
            "{kind}: {small} merges at 256 leaves vs {large} at 4096 — not constant"
        );
    }
    let folding_small = merges_per_slide(TreeKind::Folding, 256);
    let daba_large = merges_per_slide(TreeKind::Daba, 4096);
    assert!(
        daba_large < folding_small,
        "daba at 4096 leaves ({daba_large}) should undercut folding at 256 ({folding_small})"
    );
}

#[test]
fn coalescing_appends_are_constant() {
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    for n in [256u64, 4096] {
        let mut tree = build_tree::<u8, u64>(TreeKind::Coalescing, 0);
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(0..n));
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 0, leaves(n..n + 1)).unwrap();
        assert!(
            stats.foreground.merges <= 2,
            "append into {n}-leaf window cost {} merges",
            stats.foreground.merges
        );
    }
}

#[test]
fn strawman_slides_scale_linearly() {
    let small = merges_per_slide(TreeKind::Strawman, 256);
    let large = merges_per_slide(TreeKind::Strawman, 4096);
    // Front-removal shifts every position: the strawman recomputes ~n
    // merges per slide, so 16x the window is ~16x the merges.
    assert!(
        large > 8.0 * small,
        "strawman: {small} at 256 vs {large} at 4096 — expected linear growth"
    );
    assert!(
        large > 2048.0,
        "strawman should redo most of the 4096-leaf window"
    );
}

#[test]
fn initial_run_is_always_linear_with_n_minus_1_merges() {
    // Every tree performs exactly n-1 merges to aggregate n fresh leaves.
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    for kind in TreeKind::ALL {
        let mut tree = build_tree::<u8, u64>(kind, 777);
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(0..777));
        assert_eq!(
            stats.foreground.merges, 776,
            "{kind}: initial run must do exactly n-1 merges"
        );
        assert_eq!(*tree.root().unwrap(), (0..777).sum::<u64>());
    }
}

#[test]
fn memo_footprint_is_linear_in_the_window() {
    // The number of memoized nodes (hence bytes) must be O(window), not
    // O(window log window): each tree stores ≤ 2n aggregates.
    let combiner = FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b));
    let key = 0u8;
    for kind in [
        TreeKind::Folding,
        TreeKind::Rotating,
        TreeKind::RandomizedFolding,
    ] {
        let n = 2048u64;
        let mut tree = build_tree::<u8, u64>(kind, usize::try_from(n).unwrap());
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, leaves(0..n));
        let bytes = tree.memo_bytes(&combiner, &key);
        let per_value = 16;
        assert!(
            bytes <= 2 * n * per_value + per_value,
            "{kind}: footprint {bytes} exceeds 2n aggregates"
        );
        assert!(
            bytes >= n * per_value,
            "{kind}: footprint below the leaf count?"
        );
    }
}
