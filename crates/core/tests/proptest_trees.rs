//! Property-based tests: every contraction tree must agree with a naive
//! reference fold over arbitrary slide histories, and structural invariants
//! (height bounds, window length) must hold throughout.

#![deny(clippy::cast_possible_truncation)]

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;
use slider_core::{
    build_tree, Combiner, ContractionTree, FnCombiner, TreeCx, TreeKind, UpdateStats,
    WindowAggregator,
};

/// One window slide: drop `remove` leading leaves (capped to the window),
/// append `add` values.
#[derive(Debug, Clone)]
struct Slide {
    remove: usize,
    add: Vec<u64>,
    preprocess: bool,
}

fn slide_strategy(max_remove: usize, max_add: usize) -> impl Strategy<Value = Slide> {
    (
        0..=max_remove,
        proptest::collection::vec(1u64..1_000, 0..=max_add),
        proptest::bool::ANY,
    )
        .prop_map(|(remove, add, preprocess)| Slide {
            remove,
            add,
            preprocess,
        })
}

fn sum_combiner() -> impl Combiner<u8, u64> {
    FnCombiner::new(|_: &u8, a: &u64, b: &u64| a.wrapping_add(*b))
}

fn leaves(values: &[u64]) -> Vec<Option<Arc<u64>>> {
    values.iter().map(|v| Some(Arc::new(*v))).collect()
}

/// Applies a slide history to `kind` and checks the aggregate against a
/// reference `VecDeque` after every step.
fn check_variable_width(kind: TreeKind, initial: Vec<u64>, slides: Vec<Slide>) {
    let combiner = sum_combiner();
    let key = 0u8;
    let mut tree = build_tree::<u8, u64>(kind, 0);
    let mut reference: VecDeque<u64> = initial.iter().copied().collect();

    let mut stats = UpdateStats::default();
    let mut cx = TreeCx::new(&combiner, &key, &mut stats);
    tree.rebuild(&mut cx, leaves(&initial));

    for slide in slides {
        let remove = slide.remove.min(reference.len());
        for _ in 0..remove {
            reference.pop_front();
        }
        reference.extend(slide.add.iter().copied());

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, remove, leaves(&slide.add)).unwrap();
        if slide.preprocess {
            tree.preprocess(&mut cx);
        }

        let expected: u64 = reference.iter().fold(0, |a, b| a.wrapping_add(*b));
        let parts = tree.reduce_parts();
        let got: u64 = parts.iter().map(|v| **v).fold(0, |a, b| a.wrapping_add(b));
        if reference.is_empty() {
            assert!(parts.is_empty(), "{kind}: parts for an empty window");
        } else {
            assert_eq!(got, expected, "{kind}: aggregate mismatch");
        }
        assert_eq!(
            tree.len(),
            reference.len(),
            "{kind}: window length mismatch"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn folding_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::Folding, initial, slides);
    }

    #[test]
    fn randomized_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::RandomizedFolding, initial, slides);
    }

    #[test]
    fn strawman_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::Strawman, initial, slides);
    }

    #[test]
    fn twostack_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::TwoStack, initial, slides);
    }

    #[test]
    fn daba_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::Daba, initial, slides);
    }

    #[test]
    fn daba_lite_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        check_variable_width(TreeKind::DabaLite, initial, slides);
    }

    /// The DABA pair and the two-stack aggregator must agree with the
    /// folding tree's window result on arbitrary in-order workloads — the
    /// constant-time layer is a drop-in replacement, not an approximation.
    #[test]
    fn constant_time_aggregators_equal_folding_tree(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        slides in proptest::collection::vec(slide_strategy(30, 8), 0..24),
    ) {
        let combiner = sum_combiner();
        let key = 0u8;
        let kinds = [
            TreeKind::Folding,
            TreeKind::Daba,
            TreeKind::DabaLite,
            TreeKind::TwoStack,
        ];
        let mut trees: Vec<_> = kinds
            .iter()
            .map(|&kind| build_tree::<u8, u64>(kind, 0))
            .collect();
        let mut window = initial.len();
        for tree in &mut trees {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&initial));
        }
        for slide in &slides {
            let remove = slide.remove.min(window);
            window = window - remove + slide.add.len();
            let mut roots = Vec::new();
            for tree in &mut trees {
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                tree.advance(&mut cx, remove, leaves(&slide.add)).unwrap();
                roots.push(tree.root().map(|v| *v));
            }
            for (kind, root) in kinds.iter().zip(&roots) {
                prop_assert_eq!(
                    root, &roots[0],
                    "{} disagrees with folding at window {}", kind, window
                );
            }
        }
    }

    /// Every kind that advertises native splices must agree with a naive
    /// reference deque over arbitrary interleavings of edge slides and
    /// interior splices — the disordered-stream analogue of the in-order
    /// reference checks above.
    #[test]
    fn splice_kinds_match_reference_under_mixed_ops(
        initial in proptest::collection::vec(1u64..1_000, 0..24),
        ops in proptest::collection::vec(
            (0usize..3, 0usize..24, proptest::collection::vec(1u64..1_000, 0..6)), 0..32),
    ) {
        for kind in TreeKind::ALL {
            if !kind.supports_splice() {
                continue;
            }
            let combiner = sum_combiner();
            let key = 0u8;
            let mut tree = build_tree::<u8, u64>(kind, 0);
            let mut reference: VecDeque<u64> = initial.iter().copied().collect();

            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.rebuild(&mut cx, leaves(&initial));

            for (op, pos, values) in &ops {
                let mut stats = UpdateStats::default();
                let mut cx = TreeCx::new(&combiner, &key, &mut stats);
                match op {
                    0 => {
                        let remove = (*pos).min(reference.len());
                        for _ in 0..remove {
                            reference.pop_front();
                        }
                        reference.extend(values.iter().copied());
                        tree.advance(&mut cx, remove, leaves(values)).unwrap();
                    }
                    1 => {
                        let at = (*pos).min(reference.len());
                        for (j, v) in values.iter().enumerate() {
                            reference.insert(at + j, *v);
                        }
                        let values = values.iter().copied().map(Arc::new).collect();
                        tree.insert_at(&mut cx, at, values).unwrap();
                    }
                    _ => {
                        let at = (*pos).min(reference.len());
                        let count = values.len().min(reference.len() - at);
                        reference.drain(at..at + count);
                        tree.evict_range(&mut cx, at, count).unwrap();
                    }
                }
                let expected: u64 = reference.iter().fold(0, |a, b| a.wrapping_add(*b));
                match tree.root() {
                    Some(root) => prop_assert_eq!(*root, expected, "{} root", kind),
                    None => prop_assert_eq!(expected, 0, "{} empty root", kind),
                }
                prop_assert_eq!(tree.len(), reference.len(), "{} len", kind);
            }
        }
    }

    #[test]
    fn coalescing_matches_reference(
        initial in proptest::collection::vec(1u64..1_000, 0..16),
        slides in proptest::collection::vec(slide_strategy(0, 6), 0..16),
    ) {
        // remove is always 0 for append-only windows.
        check_variable_width(TreeKind::Coalescing, initial, slides);
    }

    #[test]
    fn rotating_matches_reference(
        capacity in 1usize..12,
        fills in proptest::collection::vec(proptest::option::of(1u64..1_000), 0..12),
        rotations in proptest::collection::vec(
            (proptest::option::of(1u64..1_000), proptest::bool::ANY), 0..40),
    ) {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = build_tree::<u8, u64>(TreeKind::Rotating, capacity);
        // Reference: a slot array of the most recent `capacity` buckets.
        let mut slots: VecDeque<Option<u64>> = VecDeque::new();

        let fills: Vec<Option<u64>> = fills.into_iter().take(capacity).collect();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(&mut cx, fills.iter().map(|v| v.map(Arc::new)).collect());
        slots.extend(fills.iter().copied());

        for (value, preprocess) in rotations {
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            if preprocess {
                tree.preprocess(&mut cx);
            }
            if slots.len() == capacity {
                slots.pop_front();
                tree.advance(&mut cx, 1, vec![value.map(Arc::new)]).unwrap();
            } else {
                tree.advance(&mut cx, 0, vec![value.map(Arc::new)]).unwrap();
            }
            slots.push_back(value);

            let expected: Option<u64> = slots.iter().flatten().copied()
                .reduce(|a, b| a.wrapping_add(b));
            let got = tree.root().map(|v| *v);
            prop_assert_eq!(got, expected);
            prop_assert_eq!(tree.len(), slots.iter().flatten().count());
        }
    }

    #[test]
    fn folding_height_is_logarithmic_in_capacity(
        initial in proptest::collection::vec(1u64..100, 1..200),
        slides in proptest::collection::vec(slide_strategy(16, 16), 0..16),
    ) {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = slider_core::FoldingTree::new();
        let mut live = initial.len();

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        WindowAggregator::<u8, u64>::rebuild(&mut tree, &mut cx, leaves(&initial));
        let mut max_ever = live;
        for slide in slides {
            let remove = slide.remove.min(live);
            live = live - remove + slide.add.len();
            max_ever = max_ever.max(live);
            let mut stats = UpdateStats::default();
            let mut cx = TreeCx::new(&combiner, &key, &mut stats);
            tree.advance(&mut cx, remove, leaves(&slide.add)).unwrap();
        }
        if live > 0 {
            let height = ContractionTree::<u8, u64>::height(&tree);
            // The capacity never exceeds 2 × the largest window ever held
            // (each unfold doubles only when the previous capacity is full),
            // so height ≤ log2(2 · next_pow2(max_ever)) + 1.
            let bound = (2 * max_ever.next_power_of_two()).trailing_zeros() as usize + 2;
            prop_assert!(
                height <= bound,
                "height {} exceeds bound {} (max window {})", height, bound, max_ever
            );
        }
    }

    #[test]
    fn randomized_work_is_sublinear_on_small_slides(
        seed in 0u64..1_000,
    ) {
        let combiner = sum_combiner();
        let key = 0u8;
        let mut tree = slider_core::RandomizedFoldingTree::with_seed(seed);
        let window: Vec<u64> = (0..512).collect();
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        WindowAggregator::<u8, u64>::rebuild(&mut tree, &mut cx, leaves(&window));

        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 1, leaves(&[7_777])).unwrap();
        // A single-leaf slide must not redo anywhere near the whole window.
        prop_assert!(
            stats.foreground.merges < 150,
            "seed {}: {} merges for a 1-leaf slide over 512 leaves",
            seed,
            stats.foreground.merges
        );
    }
}

/// Associativity sanity for a non-trivial combiner: the trees must produce
/// identical results no matter how they internally parenthesize.
#[test]
fn all_trees_agree_with_each_other() {
    let combiner = FnCombiner::new(|_: &u8, a: &Vec<u64>, b: &Vec<u64>| {
        // Sorted-merge combiner (associative AND commutative).
        let mut out = a.clone();
        out.extend(b.iter().copied());
        out.sort_unstable();
        out
    });
    let key = 0u8;
    let window: Vec<Vec<u64>> = (0..33).map(|i| vec![i * 3, i * 3 + 1]).collect();

    let mut roots = Vec::new();
    for kind in [
        TreeKind::Strawman,
        TreeKind::Folding,
        TreeKind::RandomizedFolding,
    ] {
        let mut tree = build_tree::<u8, Vec<u64>>(kind, 0);
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.rebuild(
            &mut cx,
            window.iter().map(|v| Some(Arc::new(v.clone()))).collect(),
        );
        let mut stats = UpdateStats::default();
        let mut cx = TreeCx::new(&combiner, &key, &mut stats);
        tree.advance(&mut cx, 5, vec![Some(Arc::new(vec![1000, 1001]))])
            .unwrap();
        roots.push((kind, tree.root().map(|v| (*v).clone())));
    }
    let first = roots[0].1.clone();
    for (kind, root) in &roots {
        assert_eq!(root, &first, "{kind} disagrees");
    }
}
