//! A Pig-Latin-like script parser (§5: "Pig consists of a high-level
//! language similar to SQL, and a compiler that translates Pig programs
//! to a workflow of multiple pipelined MapReduce jobs").
//!
//! The dialect covers the operators the query layer supports, in linear
//! pipelines (each statement consumes the previous alias):
//!
//! ```text
//! views  = LOAD 'pageviews';
//! big    = FILTER views BY $3 > 4000 AND $0 != 7;
//! slim   = FOREACH big GENERATE $0, $4;
//! joined = JOIN slim BY $0, users;
//! byuser = GROUP joined BY $2 AGGREGATE COUNT, SUM($1);
//! top    = ORDER byuser BY $2 DESC LIMIT 10;
//! ```
//!
//! `JOIN ... , users` performs a replicated (broadcast) join against a
//! static table registered with the parser by name.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::plan::{AggFn, CmpOp, Expr, Field, Predicate, Query, Row};

/// A parse error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based script line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Static tables available to `JOIN` statements, by name.
pub type TableRegistry = HashMap<String, HashMap<Field, Vec<Row>>>;

/// Parses `script` into a [`Query`], resolving join tables from `tables`.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for syntax errors,
/// unknown tables, and dataflow violations (each statement must consume
/// the previous statement's alias; the first statement must be `LOAD`).
pub fn parse_script(script: &str, tables: &TableRegistry) -> Result<Query, ParseError> {
    let mut query = Query::load();
    let mut previous_alias: Option<String> = None;

    for (idx, raw_line) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let statement = line
            .strip_suffix(';')
            .ok_or_else(|| err("statement must end with ';'".into()))?;

        let (alias, rest) = statement
            .split_once('=')
            .ok_or_else(|| err("expected '<alias> = <operator> ...'".into()))?;
        let alias = alias.trim().to_string();
        if alias.is_empty() || !alias.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(format!("bad alias '{alias}'")));
        }
        let mut tokens = Tokenizer::new(rest);

        let op = tokens.ident().map_err(&err)?;
        match op.to_ascii_uppercase().as_str() {
            "LOAD" => {
                if previous_alias.is_some() {
                    return Err(err("LOAD must be the first statement".into()));
                }
                tokens.string().map_err(&err)?; // relation name, informational
            }
            "FILTER" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("BY").map_err(&err)?;
                let predicate = parse_or(&mut tokens).map_err(&err)?;
                query = query.filter(predicate);
            }
            "FOREACH" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("GENERATE").map_err(&err)?;
                let exprs = parse_expr_list(&mut tokens).map_err(&err)?;
                query = query.project(exprs);
            }
            "JOIN" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("BY").map_err(&err)?;
                let col = tokens.column().map_err(&err)?;
                tokens.punct(',').map_err(&err)?;
                let table_name = tokens.ident().map_err(&err)?;
                let table = tables
                    .get(&table_name)
                    .ok_or_else(|| err(format!("unknown join table '{table_name}'")))?;
                query = query.join_static(table.clone(), col);
            }
            "GROUP" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("BY").map_err(&err)?;
                let cols = parse_column_list(&mut tokens).map_err(&err)?;
                tokens.keyword("AGGREGATE").map_err(&err)?;
                let aggs = parse_agg_list(&mut tokens).map_err(&err)?;
                query = query.group_by(cols, aggs);
            }
            "DISTINCT" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("ON").map_err(&err)?;
                let cols = parse_column_list(&mut tokens).map_err(&err)?;
                query = query.distinct(cols);
            }
            "ORDER" => {
                expect_previous(&mut tokens, &previous_alias).map_err(&err)?;
                tokens.keyword("BY").map_err(&err)?;
                let col = tokens.column().map_err(&err)?;
                let desc = match tokens.peek_ident().map(|s| s.to_ascii_uppercase()) {
                    Some(dir) if dir == "DESC" => {
                        tokens.ident().map_err(&err)?;
                        true
                    }
                    Some(dir) if dir == "ASC" => {
                        tokens.ident().map_err(&err)?;
                        false
                    }
                    _ => true,
                };
                tokens.keyword("LIMIT").map_err(&err)?;
                let k = tokens.integer().map_err(&err)?;
                if k <= 0 {
                    return Err(err("LIMIT must be positive".into()));
                }
                let k = usize::try_from(k)
                    .map_err(|_| err("LIMIT exceeds the addressable row count".into()))?;
                query = query.top_k(col, k, desc);
            }
            other => return Err(err(format!("unknown operator '{other}'"))),
        }
        if !tokens.at_end() {
            return Err(err(format!(
                "unexpected trailing input: '{}'",
                tokens.rest()
            )));
        }
        previous_alias = Some(alias);
    }

    if previous_alias.is_none() {
        return Err(ParseError {
            line: 1,
            message: "empty script".into(),
        });
    }
    Ok(query)
}

fn strip_comment(line: &str) -> &str {
    match line.find("--") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn expect_previous(tokens: &mut Tokenizer<'_>, previous: &Option<String>) -> Result<(), String> {
    let from = tokens.ident()?;
    match previous {
        None => Err("pipeline must start with LOAD".into()),
        Some(prev) if *prev == from => Ok(()),
        Some(prev) => Err(format!(
            "statement consumes '{from}' but the previous alias is '{prev}' (pipelines are linear)"
        )),
    }
}

fn parse_expr_list(tokens: &mut Tokenizer<'_>) -> Result<Vec<Expr>, String> {
    let mut exprs = vec![parse_expr(tokens)?];
    while tokens.try_punct(',') {
        exprs.push(parse_expr(tokens)?);
    }
    Ok(exprs)
}

fn parse_column_list(tokens: &mut Tokenizer<'_>) -> Result<Vec<usize>, String> {
    let mut cols = vec![tokens.column()?];
    while tokens.try_punct(',') {
        cols.push(tokens.column()?);
    }
    Ok(cols)
}

fn parse_agg_list(tokens: &mut Tokenizer<'_>) -> Result<Vec<AggFn>, String> {
    let mut aggs = vec![parse_agg(tokens)?];
    while tokens.try_punct(',') {
        aggs.push(parse_agg(tokens)?);
    }
    Ok(aggs)
}

fn parse_agg(tokens: &mut Tokenizer<'_>) -> Result<AggFn, String> {
    let name = tokens.ident()?.to_ascii_uppercase();
    if name == "COUNT" {
        return Ok(AggFn::Count);
    }
    tokens.punct('(')?;
    let col = tokens.column()?;
    tokens.punct(')')?;
    match name.as_str() {
        "SUM" => Ok(AggFn::Sum(col)),
        "MIN" => Ok(AggFn::Min(col)),
        "MAX" => Ok(AggFn::Max(col)),
        "AVG" => Ok(AggFn::Avg(col)),
        other => Err(format!("unknown aggregate '{other}'")),
    }
}

fn parse_expr(tokens: &mut Tokenizer<'_>) -> Result<Expr, String> {
    if let Some(col) = tokens.try_column() {
        return Ok(Expr::Col(col));
    }
    if let Some(i) = tokens.try_integer() {
        return Ok(Expr::Lit(Field::Int(i)));
    }
    if let Some(s) = tokens.try_string() {
        return Ok(Expr::Lit(Field::Str(s)));
    }
    Err(format!(
        "expected $column, integer, or 'string' (at '{}')",
        tokens.rest()
    ))
}

/// `or := and (OR and)*`
fn parse_or(tokens: &mut Tokenizer<'_>) -> Result<Predicate, String> {
    let mut terms = vec![parse_and(tokens)?];
    while tokens.try_keyword("OR") {
        terms.push(parse_and(tokens)?);
    }
    Ok(if terms.len() == 1 {
        terms.pop().expect("one term")
    } else {
        Predicate::Or(terms)
    })
}

/// `and := cmp (AND cmp)*`
fn parse_and(tokens: &mut Tokenizer<'_>) -> Result<Predicate, String> {
    let mut terms = vec![parse_cmp(tokens)?];
    while tokens.try_keyword("AND") {
        terms.push(parse_cmp(tokens)?);
    }
    Ok(if terms.len() == 1 {
        terms.pop().expect("one term")
    } else {
        Predicate::And(terms)
    })
}

/// `cmp := '(' or ')' | expr op expr`
fn parse_cmp(tokens: &mut Tokenizer<'_>) -> Result<Predicate, String> {
    if tokens.try_punct('(') {
        let inner = parse_or(tokens)?;
        tokens.punct(')')?;
        return Ok(inner);
    }
    let left = parse_expr(tokens)?;
    let op = tokens.cmp_op()?;
    let right = parse_expr(tokens)?;
    Ok(Predicate::Cmp { left, op, right })
}

/// A small hand-rolled tokenizer over one statement.
struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn rest(&self) -> &str {
        self.input[self.pos..].trim()
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let len = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .count();
        if len == 0 {
            return Err(format!("expected identifier at '{}'", self.rest()));
        }
        let out: String = rest.chars().take(len).collect();
        self.pos += out.len();
        Ok(out)
    }

    fn peek_ident(&mut self) -> Option<String> {
        let save = self.pos;
        let out = self.ident().ok();
        self.pos = save;
        out
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let got = self.ident()?;
        if got.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, found '{got}'"))
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        if self.keyword(kw).is_ok() {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn punct(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected '{c}' at '{}'", self.rest()))
        }
    }

    fn try_punct(&mut self, c: char) -> bool {
        let save = self.pos;
        if self.punct(c).is_ok() {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn column(&mut self) -> Result<usize, String> {
        self.punct('$')?;
        let n = self.integer()?;
        usize::try_from(n).map_err(|_| "negative column index".to_string())
    }

    fn try_column(&mut self) -> Option<usize> {
        let save = self.pos;
        match self.column() {
            Ok(c) => Some(c),
            Err(_) => {
                self.pos = save;
                None
            }
        }
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let negative = rest.starts_with('-');
        let digits_start = usize::from(negative);
        let len = rest[digits_start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .count();
        if len == 0 {
            return Err(format!("expected integer at '{}'", self.rest()));
        }
        let text = &rest[..digits_start + len];
        self.pos += text.len();
        text.parse()
            .map_err(|e| format!("bad integer '{text}': {e}"))
    }

    fn try_integer(&mut self) -> Option<i64> {
        let save = self.pos;
        match self.integer() {
            Ok(i) => Some(i),
            Err(_) => {
                self.pos = save;
                None
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.punct('\'')?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find('\'')
            .ok_or_else(|| "unterminated string".to_string())?;
        let out = rest[..end].to_string();
        self.pos += end + 1;
        Ok(out)
    }

    fn try_string(&mut self) -> Option<String> {
        let save = self.pos;
        match self.string() {
            Ok(s) => Some(s),
            Err(_) => {
                self.pos = save;
                None
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, String> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let (op, len) = if rest.starts_with("!=") {
            (CmpOp::Ne, 2)
        } else if rest.starts_with("<=") {
            (CmpOp::Le, 2)
        } else if rest.starts_with(">=") {
            (CmpOp::Ge, 2)
        } else if rest.starts_with("==") {
            (CmpOp::Eq, 2)
        } else if rest.starts_with('<') {
            (CmpOp::Lt, 1)
        } else if rest.starts_with('>') {
            (CmpOp::Gt, 1)
        } else if rest.starts_with('=') {
            (CmpOp::Eq, 1)
        } else {
            return Err(format!("expected comparison operator at '{}'", self.rest()));
        };
        self.pos += len;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::QueryOp;

    fn registry() -> TableRegistry {
        let mut tables = TableRegistry::new();
        let mut users = HashMap::new();
        users.insert(Field::Int(1), vec![vec![Field::Str("alice".into())]]);
        tables.insert("users".to_string(), users);
        tables
    }

    #[test]
    fn parses_the_full_dialect() {
        let script = "
            views  = LOAD 'pageviews';                       -- the windowed relation
            big    = FILTER views BY $3 > 4000 AND ($0 != 7 OR $1 = 0);
            slim   = FOREACH big GENERATE $0, $4, 100;
            joined = JOIN slim BY $0, users;
            byuser = GROUP joined BY $2 AGGREGATE COUNT, SUM($1), AVG($1);
            top    = ORDER byuser BY $2 DESC LIMIT 10;
        ";
        let query = parse_script(script, &registry()).expect("parses");
        assert_eq!(query.job_count(), 2);
        let kinds: Vec<&'static str> = query
            .ops()
            .iter()
            .map(|op| match op {
                QueryOp::Filter(_) => "filter",
                QueryOp::Project(_) => "project",
                QueryOp::JoinStatic { .. } => "join",
                QueryOp::GroupBy { .. } => "group",
                QueryOp::Distinct(_) => "distinct",
                QueryOp::TopK { .. } => "topk",
            })
            .collect();
        assert_eq!(kinds, vec!["filter", "project", "join", "group", "topk"]);
    }

    #[test]
    fn parsed_query_runs_end_to_end() {
        use slider_mapreduce::{make_splits, ExecMode, JobConfig};
        let script = "
            rows = LOAD 'numbers';
            pos  = FILTER rows BY $0 >= 0;
            byv  = GROUP pos BY $0 AGGREGATE COUNT;
            top  = ORDER byv BY $1 DESC LIMIT 2;
        ";
        let query = parse_script(script, &TableRegistry::new()).unwrap();
        let mut exec = query
            .compile(
                JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
                4,
            )
            .unwrap();
        let rows: Vec<Row> = [-1i64, 2, 2, 2, 3, 3, 5]
            .iter()
            .map(|&v| vec![Field::Int(v)])
            .collect();
        exec.initial_run(make_splits(0, rows, 3)).unwrap();
        let top = exec.rows();
        assert_eq!(top[0], vec![Field::Int(2), Field::Int(3)]);
        assert_eq!(top[1], vec![Field::Int(3), Field::Int(2)]);
    }

    #[test]
    fn distinct_statement_parses() {
        let script = "
            rows = LOAD 'r';
            ded  = DISTINCT rows ON $0, $2;
        ";
        let query = parse_script(script, &TableRegistry::new()).unwrap();
        assert!(matches!(query.ops()[0], QueryOp::Distinct(ref cols) if cols == &[0, 2]));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let script = "rows = LOAD 'r';\nbad = FILTER rows BY $0 ~ 3;";
        let err = parse_script(script, &TableRegistry::new()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("comparison"));
    }

    #[test]
    fn nonlinear_pipelines_are_rejected() {
        let script = "a = LOAD 'r';\nb = FILTER a BY $0 > 1;\nc = FILTER a BY $0 > 2;";
        let err = parse_script(script, &TableRegistry::new()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("linear"), "{}", err.message);
    }

    #[test]
    fn unknown_table_and_missing_load_are_rejected() {
        let err = parse_script("a = LOAD 'r';\nj = JOIN a BY $0, nope;", &registry()).unwrap_err();
        assert!(err.message.contains("unknown join table"));

        let err = parse_script("a = FILTER x BY $0 > 1;", &registry()).unwrap_err();
        assert!(err.message.contains("LOAD"));

        let err = parse_script("  \n", &registry()).unwrap_err();
        assert!(err.message.contains("empty"));
    }

    #[test]
    fn missing_semicolon_is_rejected() {
        let err = parse_script("a = LOAD 'r'", &registry()).unwrap_err();
        assert!(err.message.contains(";"));
    }
}
