//! # slider-query — declarative dataflow queries over sliding windows
//!
//! Reproduces Slider's query-processing layer (paper §5): a Pig-Latin-like
//! declarative plan is compiled into a pipeline of MapReduce jobs, where
//! the window-facing first job uses the self-adjusting contraction tree
//! matching the window discipline and every later job propagates changes
//! with strawman trees (`slider_mapreduce::Pipeline`).
//!
//! ```
//! use slider_query::{AggFn, Field, Query, Row};
//! use slider_mapreduce::{make_splits, ExecMode, JobConfig};
//!
//! // SELECT page, COUNT(*) FROM views GROUP BY page → top 2 by count.
//! let query = Query::load()
//!     .group_by(vec![0], vec![AggFn::Count])
//!     .top_k(1, 2, true);
//! let mut exec = query
//!     .compile(JobConfig::new(ExecMode::slider_folding()).with_partitions(2), 8)?;
//!
//! let rows: Vec<Row> = (0..10)
//!     .map(|i| vec![Field::Int(i % 3)]) // pages 0,1,2
//!     .collect();
//! exec.initial_run(make_splits(0, rows, 5))?;
//! let top = exec.rows();
//! assert_eq!(top.len(), 2);
//! assert_eq!(top[0], vec![Field::Int(0), Field::Int(4)]); // page 0 viewed 4×
//! # Ok::<(), slider_query::QueryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Row/field arithmetic mixes i64 field values with usize indexing; every
// narrowing must be explicit and checked, never a silent `as` truncation.
#![deny(clippy::cast_possible_truncation)]

mod exec;
mod parser;
mod pigmix;
mod plan;
mod stage;

pub use exec::{QueryError, QueryExecutor, QueryRunStats};
pub use parser::{parse_script, ParseError, TableRegistry};
pub use pigmix::{pageview_row, pigmix_queries, user_table, PigMixQuery};
pub use plan::{AggFn, CmpOp, Expr, Field, Predicate, Query, QueryOp, Row};
pub use stage::{QValue, RowStage};
