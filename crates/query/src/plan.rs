//! The logical query plan: rows, expressions, predicates and the
//! Pig-Latin-like builder.

use std::collections::HashMap;
use std::sync::Arc;

/// A field value. Integral and string types keep rows `Eq + Hash`
/// (monetary/score values are fixed-point integers, as in Pig's PigMix
/// data).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Field {
    /// The integer value, if this field is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Field::Int(i) => Some(*i),
            Field::Str(_) => None,
        }
    }

    /// Modeled byte size.
    pub fn bytes(&self) -> u64 {
        match self {
            Field::Int(_) => 8,
            Field::Str(s) => s.len() as u64 + 8,
        }
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::Int(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

/// A row: an ordered tuple of fields.
pub type Row = Vec<Field>;

/// A scalar expression over a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Column reference.
    Col(usize),
    /// Integer literal.
    Lit(Field),
}

impl Expr {
    /// Evaluates against `row`.
    ///
    /// # Panics
    ///
    /// Panics if a column reference is out of bounds (a plan bug surfaced
    /// during compilation in debug builds).
    pub fn eval(&self, row: &Row) -> Field {
        match self {
            Expr::Col(i) => row[*i].clone(),
            Expr::Lit(f) => f.clone(),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A filter predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Binary comparison.
    Cmp {
        /// Left operand.
        left: Expr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Expr,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates against `row`.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::Cmp { left, op, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    CmpOp::Lt => l < r,
                    CmpOp::Le => l <= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Ge => l >= r,
                }
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
        }
    }
}

/// An aggregate function over a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count.
    Count,
    /// Sum of an integer column.
    Sum(usize),
    /// Minimum of an integer column.
    Min(usize),
    /// Maximum of an integer column.
    Max(usize),
    /// Integer average of a column (floor semantics).
    Avg(usize),
}

/// One operator of the logical plan, in pipeline order.
#[derive(Debug, Clone)]
pub enum QueryOp {
    /// Keep rows satisfying the predicate (fused into the next job's map).
    Filter(Predicate),
    /// Replace each row with the projected expressions (map-fused).
    Project(Vec<Expr>),
    /// Fragment-replicate (broadcast) join against a small static table on
    /// `key_col`; matching table rows are appended to the input row
    /// (map-fused, like Pig's replicated join).
    JoinStatic {
        /// `table[key]` = rows to append for inputs whose `key_col` equals
        /// `key`.
        table: Arc<HashMap<Field, Vec<Row>>>,
        /// Join column of the input rows.
        key_col: usize,
    },
    /// Group by the given columns and aggregate (ends a MapReduce job).
    GroupBy {
        /// Grouping columns.
        cols: Vec<usize>,
        /// Aggregates appended after the group columns in the output row.
        aggs: Vec<AggFn>,
    },
    /// Deduplicate on the projected columns (ends a job).
    Distinct(Vec<usize>),
    /// Keep the `k` extreme rows by an integer column (ends a job).
    TopK {
        /// Sort column (must be `Field::Int`).
        col: usize,
        /// Number of rows kept.
        k: usize,
        /// Descending (true) or ascending order.
        desc: bool,
    },
}

impl QueryOp {
    /// Whether this operator terminates a MapReduce job.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            QueryOp::GroupBy { .. } | QueryOp::Distinct(_) | QueryOp::TopK { .. }
        )
    }
}

/// A Pig-Latin-like query under construction.
///
/// Operators apply in call order; every blocking operator (group,
/// distinct, top-k) ends one MapReduce job of the compiled pipeline.
#[derive(Debug, Clone, Default)]
pub struct Query {
    ops: Vec<QueryOp>,
}

impl Query {
    /// Starts a query over the windowed input relation.
    pub fn load() -> Self {
        Query { ops: Vec::new() }
    }

    /// Appends a filter.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.ops.push(QueryOp::Filter(predicate));
        self
    }

    /// Appends a projection.
    pub fn project(mut self, exprs: Vec<Expr>) -> Self {
        self.ops.push(QueryOp::Project(exprs));
        self
    }

    /// Appends a broadcast join against a static table.
    pub fn join_static(mut self, table: HashMap<Field, Vec<Row>>, key_col: usize) -> Self {
        self.ops.push(QueryOp::JoinStatic {
            table: Arc::new(table),
            key_col,
        });
        self
    }

    /// Appends a group-by aggregation (job boundary).
    pub fn group_by(mut self, cols: Vec<usize>, aggs: Vec<AggFn>) -> Self {
        self.ops.push(QueryOp::GroupBy { cols, aggs });
        self
    }

    /// Appends a distinct (job boundary).
    pub fn distinct(mut self, cols: Vec<usize>) -> Self {
        self.ops.push(QueryOp::Distinct(cols));
        self
    }

    /// Appends a top-k (job boundary).
    pub fn top_k(mut self, col: usize, k: usize, desc: bool) -> Self {
        self.ops.push(QueryOp::TopK { col, k, desc });
        self
    }

    /// The operator list.
    pub fn ops(&self) -> &[QueryOp] {
        &self.ops
    }

    /// Number of MapReduce jobs this query compiles to.
    pub fn job_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_blocking()).count().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_evaluate() {
        let row: Row = vec![Field::Int(5), Field::Str("x".into())];
        let p = Predicate::Cmp {
            left: Expr::Col(0),
            op: CmpOp::Gt,
            right: Expr::Lit(Field::Int(3)),
        };
        assert!(p.eval(&row));
        let and = Predicate::And(vec![
            p.clone(),
            Predicate::Cmp {
                left: Expr::Col(1),
                op: CmpOp::Eq,
                right: Expr::Lit("y".into()),
            },
        ]);
        assert!(!and.eval(&row));
        let or = Predicate::Or(vec![and.clone(), p]);
        assert!(or.eval(&row));
    }

    #[test]
    fn field_ordering_and_bytes() {
        assert!(Field::Int(1) < Field::Int(2));
        assert_eq!(Field::Int(0).bytes(), 8);
        assert_eq!(Field::Str("abc".into()).bytes(), 11);
        assert_eq!(Field::from(7i64).as_int(), Some(7));
        assert_eq!(Field::from("s").as_int(), None);
    }

    #[test]
    fn job_count_counts_blocking_ops() {
        let q = Query::load()
            .filter(Predicate::And(vec![]))
            .group_by(vec![0], vec![AggFn::Count])
            .project(vec![Expr::Col(0)])
            .top_k(0, 5, true);
        assert_eq!(q.job_count(), 2);
        assert_eq!(Query::load().job_count(), 1);
    }
}
