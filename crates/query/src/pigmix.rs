//! A PigMix-like query suite over the synthetic page-view relation
//! (Figure 10's workload).
//!
//! PigMix scripts compile to long pipelines of MapReduce jobs over a wide
//! page-view relation, optionally joined against a user relation. The five
//! queries here cover its operator mix — scan+group, replicated join,
//! distinct, filter and order-by-limit — each compiling to 2–3 jobs.
//!
//! Page-view row schema: `[user, page, time, bytes, revenue]`
//! (all `Field::Int`). Joined user columns append `[age, region]`.

use std::collections::HashMap;

use slider_workloads::pageviews::{PageView, UserRow};

use crate::plan::{AggFn, CmpOp, Expr, Field, Predicate, Query, Row};

/// A named query of the suite.
#[derive(Debug, Clone)]
pub struct PigMixQuery {
    /// Short identifier (L1-style).
    pub name: &'static str,
    /// The logical plan.
    pub query: Query,
}

/// Converts a generated page view into its relational row.
pub fn pageview_row(v: &PageView) -> Row {
    vec![
        Field::Int(v.user as i64),
        Field::Int(v.page as i64),
        Field::Int(v.time as i64),
        Field::Int(v.bytes as i64),
        Field::Int(v.revenue_micros as i64),
    ]
}

/// Builds the broadcast-join table from the user relation:
/// `user -> [age, region]`.
pub fn user_table(users: &[UserRow]) -> HashMap<Field, Vec<Row>> {
    users
        .iter()
        .map(|u| {
            (
                Field::Int(u.user as i64),
                vec![vec![Field::Int(u.age as i64), Field::Int(u.region as i64)]],
            )
        })
        .collect()
}

/// The query suite. `users` feeds the replicated joins.
pub fn pigmix_queries(users: &[UserRow]) -> Vec<PigMixQuery> {
    let table = user_table(users);
    vec![
        // L1: hottest pages — group by page, count, top-10.
        PigMixQuery {
            name: "L1-hot-pages",
            query: Query::load()
                .group_by(vec![1], vec![AggFn::Count])
                .top_k(1, 10, true),
        },
        // L2: revenue by region — replicated join + group + rank.
        PigMixQuery {
            name: "L2-region-revenue",
            query: Query::load()
                .join_static(table.clone(), 0)
                .group_by(vec![6], vec![AggFn::Sum(4), AggFn::Count])
                .top_k(1, 5, true),
        },
        // L3: page audience size — distinct (page,user), count per page,
        // top-10: a three-job pipeline.
        PigMixQuery {
            name: "L3-page-audience",
            query: Query::load()
                .distinct(vec![1, 0])
                .group_by(vec![0], vec![AggFn::Count])
                .top_k(1, 10, true),
        },
        // L4: heavy downloaders — filter, group by user, rank by bytes.
        PigMixQuery {
            name: "L4-heavy-users",
            query: Query::load()
                .filter(Predicate::Cmp {
                    left: Expr::Col(3),
                    op: CmpOp::Gt,
                    right: Expr::Lit(Field::Int(4_000)),
                })
                .group_by(vec![0], vec![AggFn::Count, AggFn::Sum(3)])
                .top_k(2, 10, true),
        },
        // L5: spend per age bracket — join + average + rank.
        PigMixQuery {
            name: "L5-age-spend",
            query: Query::load()
                .join_static(table, 0)
                .group_by(vec![5], vec![AggFn::Avg(4), AggFn::Count])
                .top_k(1, 8, true),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_mapreduce::{make_splits, ExecMode, JobConfig};
    use slider_workloads::pageviews::{generate_users, generate_views, PageViewConfig};

    #[test]
    fn all_queries_compile_and_run_incrementally() {
        let cfg = PageViewConfig {
            users: 50,
            pages: 30,
            skew: 1.0,
        };
        let users = generate_users(0, &cfg);
        let views: Vec<Row> = generate_views(1, &cfg, 0, 300)
            .iter()
            .map(pageview_row)
            .collect();

        for pq in pigmix_queries(&users) {
            let run = |mode| {
                let mut exec = pq
                    .query
                    .compile(JobConfig::new(mode).with_partitions(2), 8)
                    .unwrap();
                exec.initial_run(make_splits(0, views[0..200].to_vec(), 20))
                    .unwrap();
                exec.advance(2, make_splits(100, views[200..240].to_vec(), 20))
                    .unwrap();
                exec.rows()
            };
            let vanilla = run(ExecMode::Recompute);
            let slider = run(ExecMode::slider_folding());
            assert_eq!(vanilla, slider, "query {} diverged", pq.name);
            assert!(!vanilla.is_empty(), "query {} returned nothing", pq.name);
        }
    }

    #[test]
    fn queries_compile_to_multi_job_pipelines() {
        let users = generate_users(0, &PageViewConfig::default());
        let jobs: Vec<usize> = pigmix_queries(&users)
            .iter()
            .map(|pq| {
                pq.query
                    .compile(JobConfig::new(ExecMode::slider_folding()), 4)
                    .unwrap()
                    .jobs()
            })
            .collect();
        assert_eq!(jobs, vec![2, 2, 3, 2, 2]);
    }

    #[test]
    fn pageview_row_schema() {
        let v = PageView {
            user: 1,
            page: 2,
            time: 3,
            bytes: 4,
            revenue_micros: 5,
        };
        assert_eq!(
            pageview_row(&v),
            vec![
                Field::Int(1),
                Field::Int(2),
                Field::Int(3),
                Field::Int(4),
                Field::Int(5)
            ]
        );
    }
}
