//! Query compilation and incremental execution.

use std::error::Error;
use std::fmt;

use slider_mapreduce::{
    JobConfig, JobError, Pipeline, PipelineRunResult, SpanKind, Split, TraceSink,
};

use crate::plan::{Query, QueryOp, Row};
use crate::stage::RowStage;

/// Errors from query compilation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The underlying MapReduce job rejected the operation.
    Job(JobError),
    /// The plan cannot be compiled (detailed in the message).
    BadPlan(String),
    /// A non-blocking operator appeared where a job must end; only
    /// group-by, distinct, top-k, or a trailing collect may close a stage.
    TrailingOperator {
        /// Debug rendering of the offending operator.
        op: String,
    },
    /// Two partial aggregates of different shapes were merged.
    MismatchedAggregates {
        /// Debug rendering of the left partial.
        left: String,
        /// Debug rendering of the right partial.
        right: String,
    },
    /// A stage received a partial value its blocking operator cannot
    /// process (e.g. a top-k buffer outside a top-k stage).
    IncompatibleValue {
        /// Debug rendering of the stage's blocking operator.
        stage: String,
        /// Debug rendering of the offending value.
        value: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Job(e) => write!(f, "job error: {e}"),
            QueryError::BadPlan(msg) => write!(f, "bad query plan: {msg}"),
            QueryError::TrailingOperator { op } => {
                write!(f, "operator {op} does not end a job")
            }
            QueryError::MismatchedAggregates { left, right } => {
                write!(f, "mismatched partial aggregates: {left} vs {right}")
            }
            QueryError::IncompatibleValue { stage, value } => {
                write!(f, "stage {stage} received incompatible value {value}")
            }
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Job(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JobError> for QueryError {
    fn from(e: JobError) -> Self {
        QueryError::Job(e)
    }
}

/// Statistics of one query run: the underlying pipeline's result.
pub type QueryRunStats = PipelineRunResult;

/// A compiled, incrementally executable query.
///
/// Obtained from [`Query::compile`]; drive it with
/// [`QueryExecutor::initial_run`] / [`QueryExecutor::advance`] and read
/// [`QueryExecutor::rows`].
///
/// Execution runs on the pipeline's shared partition-sharded runtime
/// ([`slider_mapreduce::Runtime`]): the window-facing first job
/// parallelizes across its reduce partitions and every inner job across
/// its change-detection buckets and dirty keys. The worker count comes
/// from [`JobConfig::with_threads`] (or the `SLIDER_THREADS` environment
/// variable) and never affects query answers or metered work.
#[derive(Debug)]
pub struct QueryExecutor {
    pipeline: Pipeline<RowStage>,
    jobs: usize,
}

impl Query {
    /// Compiles the query into a pipeline: the window-facing first job runs
    /// under `config` (whose [`slider_mapreduce::ExecMode`] selects the
    /// §3–§4 tree), and every later job uses strawman trees over
    /// `inner_buckets` change-detection buckets (§5).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::BadPlan`] for unusable plans and propagates
    /// job-configuration errors.
    pub fn compile(
        &self,
        config: JobConfig,
        inner_buckets: usize,
    ) -> Result<QueryExecutor, QueryError> {
        if inner_buckets == 0 {
            return Err(QueryError::BadPlan("inner_buckets must be positive".into()));
        }
        // Split the operator list into jobs at blocking operators.
        let mut jobs: Vec<(Vec<QueryOp>, Option<QueryOp>)> = Vec::new();
        let mut fused: Vec<QueryOp> = Vec::new();
        for op in self.ops() {
            if op.is_blocking() {
                jobs.push((std::mem::take(&mut fused), Some(op.clone())));
            } else {
                fused.push(op.clone());
            }
        }
        if !fused.is_empty() || jobs.is_empty() {
            jobs.push((fused, None));
        }

        let mut iter = jobs.into_iter();
        let (first_mappers, first_blocking) = iter.next().expect("at least one job");
        let mut pipeline = Pipeline::new(RowStage::new(first_mappers, first_blocking)?, config)?;
        for (i, (mappers, blocking)) in iter.enumerate() {
            pipeline = pipeline.add_stage(
                format!("stage-{}", i + 2),
                RowStage::new(mappers, blocking)?,
                inner_buckets,
            );
        }
        let jobs = pipeline.stages();
        Ok(QueryExecutor { pipeline, jobs })
    }
}

impl QueryExecutor {
    /// Number of MapReduce jobs in the compiled pipeline.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs the initial window through the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates window-discipline violations from the first job.
    pub fn initial_run(&mut self, splits: Vec<Split<Row>>) -> Result<QueryRunStats, QueryError> {
        let stats = self.pipeline.initial_run(splits)?;
        self.trace_run(&stats);
        Ok(stats)
    }

    /// Slides the window and updates the query answer incrementally.
    ///
    /// # Errors
    ///
    /// Propagates window-discipline violations from the first job.
    pub fn advance(
        &mut self,
        remove_splits: usize,
        added: Vec<Split<Row>>,
    ) -> Result<QueryRunStats, QueryError> {
        let stats = self.pipeline.advance(remove_splits, added)?;
        self.trace_run(&stats);
        Ok(stats)
    }

    /// The current query answer.
    pub fn rows(&self) -> Vec<Row> {
        self.pipeline.final_rows()
    }

    /// Worker threads the underlying runtime uses for this query.
    pub fn runtime_threads(&self) -> usize {
        self.pipeline.runtime().threads()
    }

    /// The trace sink the compiled pipeline emits to (see
    /// [`slider_mapreduce::JobConfig::with_trace`]).
    pub fn trace(&self) -> &TraceSink {
        self.pipeline.trace()
    }

    /// Emits one query-track Stage span per run: a leaf per MapReduce job
    /// carrying the exact foreground work the pipeline stats recorded, so
    /// the query track reconciles against [`PipelineRunResult`].
    fn trace_run(&self, stats: &QueryRunStats) {
        self.pipeline.trace().with(|t| {
            let tr = t.track("query");
            let span = t.begin(
                tr,
                SpanKind::Stage,
                format!("query run #{}", stats.first.run),
            );
            t.leaf(
                tr,
                SpanKind::Stage,
                "job 1",
                stats.first.work.foreground_total(),
            );
            for (i, inner) in stats.inner.iter().enumerate() {
                t.leaf(
                    tr,
                    SpanKind::Stage,
                    format!("job {}", i + 2),
                    inner.total_work(),
                );
            }
            t.end(span);
            t.add("query.runs", 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggFn, CmpOp, Expr, Field, Predicate};
    use slider_mapreduce::{make_splits, ExecMode};

    fn views(n: i64) -> Vec<Row> {
        // [user, page, revenue]
        (0..n)
            .map(|i| {
                vec![
                    Field::Int(i % 5),
                    Field::Int(i % 3),
                    Field::Int(10 * (i % 7)),
                ]
            })
            .collect()
    }

    fn reference_group_sum(rows: &[Row]) -> std::collections::BTreeMap<i64, i64> {
        let mut out = std::collections::BTreeMap::new();
        for r in rows {
            *out.entry(r[1].as_int().unwrap()).or_insert(0) += r[2].as_int().unwrap();
        }
        out
    }

    #[test]
    fn single_job_group_by_matches_reference() {
        let query = Query::load().group_by(vec![1], vec![AggFn::Sum(2)]);
        let mut exec = query
            .compile(
                JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
                4,
            )
            .unwrap();
        assert_eq!(exec.jobs(), 1);

        let data = views(30);
        exec.initial_run(make_splits(0, data[0..20].to_vec(), 5))
            .unwrap();
        let expected = reference_group_sum(&data[0..20]);
        let got: std::collections::BTreeMap<i64, i64> = exec
            .rows()
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(got, expected);

        // Slide.
        exec.advance(1, make_splits(100, data[20..30].to_vec(), 5))
            .unwrap();
        let expected = reference_group_sum(&data[5..30]);
        let got: std::collections::BTreeMap<i64, i64> = exec
            .rows()
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_job_pipeline_with_filter_and_topk() {
        // Pages with total revenue, filtered to busy users, top-2 pages.
        let query = Query::load()
            .filter(Predicate::Cmp {
                left: Expr::Col(0),
                op: CmpOp::Ge,
                right: Expr::Lit(Field::Int(1)),
            })
            .group_by(vec![1], vec![AggFn::Sum(2)])
            .top_k(1, 2, true);
        let mut exec = query
            .compile(
                JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
                4,
            )
            .unwrap();
        assert_eq!(exec.jobs(), 2);

        let data = views(40);
        exec.initial_run(make_splits(0, data.clone(), 8)).unwrap();

        // Reference: same computation in plain Rust.
        let filtered: Vec<Row> = data
            .iter()
            .filter(|r| r[0].as_int().unwrap() >= 1)
            .cloned()
            .collect();
        let sums = reference_group_sum(&filtered);
        let mut ranked: Vec<(i64, i64)> = sums.into_iter().map(|(p, s)| (s, p)).collect();
        ranked.sort_by(|a, b| b.cmp(a));
        let expected: Vec<i64> = ranked.iter().take(2).map(|(s, _)| *s).collect();

        let got: Vec<i64> = exec.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn incremental_pipeline_matches_vanilla_pipeline() {
        let query = Query::load()
            .group_by(vec![0], vec![AggFn::Count])
            .group_by(vec![1], vec![AggFn::Count]); // histogram of user activity
        let run = |mode| {
            let mut exec = query
                .compile(JobConfig::new(mode).with_partitions(2), 4)
                .unwrap();
            let data = views(60);
            exec.initial_run(make_splits(0, data[0..40].to_vec(), 10))
                .unwrap();
            exec.advance(1, make_splits(100, data[40..50].to_vec(), 10))
                .unwrap();
            let mut rows = exec.rows();
            rows.sort();
            rows
        };
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_folding()));
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::Strawman));
        // The constant-time aggregators are drop-in replacements for the
        // query pipeline's first stage too.
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_daba()));
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_daba_lite()));
        assert_eq!(run(ExecMode::Recompute), run(ExecMode::slider_two_stack()));
    }

    #[test]
    fn query_answers_do_not_depend_on_thread_count() {
        let query = Query::load()
            .group_by(vec![0], vec![AggFn::Sum(2)])
            .top_k(1, 3, true);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut exec = query
                .compile(
                    JobConfig::new(ExecMode::slider_folding())
                        .with_partitions(3)
                        .with_threads(threads),
                    4,
                )
                .unwrap();
            assert_eq!(exec.runtime_threads(), threads);
            let data = views(60);
            let initial = exec
                .initial_run(make_splits(0, data[0..40].to_vec(), 10))
                .unwrap();
            let update = exec
                .advance(1, make_splits(100, data[40..60].to_vec(), 10))
                .unwrap();
            runs.push((exec.rows(), format!("{initial:?} {update:?}")));
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 threads");
        assert_eq!(runs[0], runs[2], "1 vs 4 threads");
    }

    #[test]
    fn bad_plan_is_rejected() {
        let query = Query::load();
        assert!(matches!(
            query.compile(JobConfig::new(ExecMode::slider_folding()), 0),
            Err(QueryError::BadPlan(_))
        ));
    }

    #[test]
    fn distinct_deduplicates_across_slides() {
        let query = Query::load().distinct(vec![0]);
        let mut exec = query
            .compile(
                JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
                4,
            )
            .unwrap();
        let rows: Vec<Row> = vec![
            vec![Field::Int(1)],
            vec![Field::Int(1)],
            vec![Field::Int(2)],
            vec![Field::Int(3)],
        ];
        exec.initial_run(make_splits(0, rows, 2)).unwrap();
        let mut got = exec.rows();
        got.sort();
        assert_eq!(
            got,
            vec![
                vec![Field::Int(1)],
                vec![Field::Int(2)],
                vec![Field::Int(3)]
            ]
        );

        // Remove the split containing both 1s: key 1 disappears.
        exec.advance(1, vec![]).unwrap();
        let mut got = exec.rows();
        got.sort();
        assert_eq!(got, vec![vec![Field::Int(2)], vec![Field::Int(3)]]);
    }
}
