//! `RowStage`: one compiled MapReduce job of a query pipeline.
//!
//! A stage fuses the plan's non-blocking operators (filter, project,
//! broadcast join) into its Map function — exactly how Pig compiles to
//! Hadoop — and implements one blocking operator (group-by, distinct,
//! top-k, or a trailing collect) as its combine/reduce.

use std::sync::Arc;

use slider_mapreduce::{MapReduceApp, StageApp};

use crate::exec::QueryError;
use crate::plan::{AggFn, Field, QueryOp, Row};

/// Partial state of one aggregate function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggState {
    /// Running count.
    Count(u64),
    /// Running sum.
    Sum(i64),
    /// Running minimum.
    Min(i64),
    /// Running maximum.
    Max(i64),
    /// Running (sum, count) for averages.
    Avg(i64, u64),
}

impl AggState {
    fn init(agg: AggFn, row: &Row) -> AggState {
        let col = |i: usize| -> i64 {
            row[i]
                .as_int()
                .expect("aggregate over a non-integer column")
        };
        match agg {
            AggFn::Count => AggState::Count(1),
            AggFn::Sum(i) => AggState::Sum(col(i)),
            AggFn::Min(i) => AggState::Min(col(i)),
            AggFn::Max(i) => AggState::Max(col(i)),
            AggFn::Avg(i) => AggState::Avg(col(i), 1),
        }
    }

    fn merge(&self, other: &AggState) -> Result<AggState, QueryError> {
        Ok(match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => AggState::Count(a + b),
            (AggState::Sum(a), AggState::Sum(b)) => AggState::Sum(a + b),
            (AggState::Min(a), AggState::Min(b)) => AggState::Min(*a.min(b)),
            (AggState::Max(a), AggState::Max(b)) => AggState::Max(*a.max(b)),
            (AggState::Avg(s1, c1), AggState::Avg(s2, c2)) => AggState::Avg(s1 + s2, c1 + c2),
            _ => {
                return Err(QueryError::MismatchedAggregates {
                    left: format!("{self:?}"),
                    right: format!("{other:?}"),
                })
            }
        })
    }

    fn finish(&self) -> Field {
        match self {
            AggState::Count(c) => Field::Int(*c as i64),
            AggState::Sum(s) => Field::Int(*s),
            AggState::Min(m) | AggState::Max(m) => Field::Int(*m),
            AggState::Avg(s, c) => Field::Int(if *c == 0 { 0 } else { s / *c as i64 }),
        }
    }
}

/// The partial aggregate a stage's combiner merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QValue {
    /// Group-by aggregate states, one per [`AggFn`].
    Aggs(Vec<AggState>),
    /// Multiplicity (distinct / collect).
    Count(u64),
    /// Bounded extreme rows: `(sort key, row)` kept in output order.
    TopK(Vec<(Field, Row)>),
}

/// The blocking operator implemented by a stage's reduce side.
#[derive(Debug, Clone)]
enum Grouping {
    GroupBy {
        cols: Vec<usize>,
        aggs: Vec<AggFn>,
    },
    Distinct(Vec<usize>),
    TopK {
        col: usize,
        k: usize,
        desc: bool,
    },
    /// Pass-through stage (query had trailing non-blocking operators).
    Collect,
}

/// One compiled MapReduce job of a query pipeline.
#[derive(Debug, Clone)]
pub struct RowStage {
    mappers: Arc<Vec<QueryOp>>,
    grouping: Grouping,
}

impl RowStage {
    /// Builds a stage from fused non-blocking `mappers` and the blocking
    /// operator `blocking` (or `None` for a trailing collect stage).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::TrailingOperator`] if `blocking` is a
    /// non-blocking operator.
    pub fn new(mappers: Vec<QueryOp>, blocking: Option<QueryOp>) -> Result<Self, QueryError> {
        debug_assert!(mappers.iter().all(|op| !op.is_blocking()));
        let grouping = match blocking {
            None => Grouping::Collect,
            Some(QueryOp::GroupBy { cols, aggs }) => Grouping::GroupBy { cols, aggs },
            Some(QueryOp::Distinct(cols)) => Grouping::Distinct(cols),
            Some(QueryOp::TopK { col, k, desc }) => Grouping::TopK { col, k, desc },
            Some(op) => {
                return Err(QueryError::TrailingOperator {
                    op: format!("{op:?}"),
                })
            }
        };
        Ok(RowStage {
            mappers: Arc::new(mappers),
            grouping,
        })
    }

    /// Fallible combine: merges two partial aggregates, surfacing shape
    /// mismatches as typed [`QueryError`]s. [`MapReduceApp::combine`]
    /// delegates here; within a compiled pipeline every partial was emitted
    /// by this stage's own map, so the error paths are unreachable there
    /// but remain observable to direct callers.
    pub fn try_combine(&self, a: &QValue, b: &QValue) -> Result<QValue, QueryError> {
        match (a, b) {
            (QValue::Aggs(x), QValue::Aggs(y)) => {
                debug_assert_eq!(x.len(), y.len());
                let states = x
                    .iter()
                    .zip(y)
                    .map(|(p, q)| p.merge(q))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(QValue::Aggs(states))
            }
            (QValue::Count(x), QValue::Count(y)) => Ok(QValue::Count(x + y)),
            (QValue::TopK(x), QValue::TopK(y)) => match &self.grouping {
                Grouping::TopK { k, desc, .. } => {
                    Ok(QValue::TopK(Self::merge_topk(x, y, *k, *desc)))
                }
                g => Err(QueryError::IncompatibleValue {
                    stage: format!("{g:?}"),
                    value: format!("{a:?}"),
                }),
            },
            _ => Err(QueryError::MismatchedAggregates {
                left: format!("{a:?}"),
                right: format!("{b:?}"),
            }),
        }
    }

    /// Fallible reduce: folds `parts` with [`RowStage::try_combine`] and
    /// finishes the blocking operator, surfacing shape mismatches as typed
    /// [`QueryError`]s.
    pub fn try_reduce(&self, key: &Row, parts: &[&QValue]) -> Result<Vec<Row>, QueryError> {
        let mut acc = parts[0].clone();
        for part in &parts[1..] {
            acc = self.try_combine(&acc, part)?;
        }
        match (&self.grouping, acc) {
            (Grouping::GroupBy { .. }, QValue::Aggs(states)) => {
                let mut row = key.clone();
                row.extend(states.iter().map(AggState::finish));
                Ok(vec![row])
            }
            (Grouping::Distinct(_), QValue::Count(c)) => {
                if c > 0 {
                    Ok(vec![key.clone()])
                } else {
                    Ok(vec![])
                }
            }
            (Grouping::TopK { .. }, QValue::TopK(rows)) => {
                Ok(rows.into_iter().map(|(_, row)| row).collect())
            }
            (Grouping::Collect, QValue::Count(c)) => {
                // A window cannot hold more rows than fit in memory, so the
                // count always fits a usize; saturate rather than truncate.
                let n = usize::try_from(c).unwrap_or(usize::MAX);
                Ok(std::iter::repeat_with(|| key.clone()).take(n).collect())
            }
            (g, v) => Err(QueryError::IncompatibleValue {
                stage: format!("{g:?}"),
                value: format!("{v:?}"),
            }),
        }
    }

    /// Applies the fused map-side operators to one row.
    fn apply_mappers(&self, row: &Row, out: &mut Vec<Row>) {
        let mut current = vec![row.clone()];
        for op in self.mappers.iter() {
            let mut next = Vec::with_capacity(current.len());
            for row in current {
                match op {
                    QueryOp::Filter(p) => {
                        if p.eval(&row) {
                            next.push(row);
                        }
                    }
                    QueryOp::Project(exprs) => {
                        next.push(exprs.iter().map(|e| e.eval(&row)).collect());
                    }
                    QueryOp::JoinStatic { table, key_col } => {
                        if let Some(matches) = table.get(&row[*key_col]) {
                            for m in matches {
                                let mut joined = row.clone();
                                joined.extend(m.iter().cloned());
                                next.push(joined);
                            }
                        }
                    }
                    _ => unreachable!("blocking op in fused mappers"),
                }
            }
            current = next;
        }
        out.extend(current);
    }

    fn merge_topk(
        a: &[(Field, Row)],
        b: &[(Field, Row)],
        k: usize,
        desc: bool,
    ) -> Vec<(Field, Row)> {
        let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
        let (mut i, mut j) = (0, 0);
        while out.len() < k && (i < a.len() || j < b.len()) {
            let take_left = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => {
                    if desc {
                        x >= y
                    } else {
                        x <= y
                    }
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                out.push(a[i].clone());
                i += 1;
            } else {
                out.push(b[j].clone());
                j += 1;
            }
        }
        out
    }
}

impl MapReduceApp for RowStage {
    type Input = Row;
    type Key = Row;
    type Value = QValue;
    type Output = Vec<Row>;

    fn map(&self, input: &Row, emit: &mut dyn FnMut(Row, QValue)) {
        let mut rows = Vec::with_capacity(1);
        self.apply_mappers(input, &mut rows);
        for row in rows {
            match &self.grouping {
                Grouping::GroupBy { cols, aggs } => {
                    let key: Row = cols.iter().map(|&c| row[c].clone()).collect();
                    let states = aggs.iter().map(|&a| AggState::init(a, &row)).collect();
                    emit(key, QValue::Aggs(states));
                }
                Grouping::Distinct(cols) => {
                    let key: Row = cols.iter().map(|&c| row[c].clone()).collect();
                    emit(key, QValue::Count(1));
                }
                Grouping::TopK { col, .. } => {
                    let sort_key = row[*col].clone();
                    emit(Vec::new(), QValue::TopK(vec![(sort_key, row)]));
                }
                Grouping::Collect => {
                    emit(row, QValue::Count(1));
                }
            }
        }
    }

    fn combine(&self, _key: &Row, a: &QValue, b: &QValue) -> QValue {
        // `RowStage::new` fixes the grouping before any value is emitted,
        // so every partial reaching the runtime has this stage's shape and
        // `try_combine` cannot fail here.
        self.try_combine(a, b)
            .expect("partials emitted by this stage share its shape")
    }

    fn reduce(&self, key: &Row, parts: &[&QValue]) -> Vec<Row> {
        self.try_reduce(key, parts)
            .expect("partials emitted by this stage share its shape")
    }

    fn map_cost(&self, _input: &Row) -> u64 {
        1 + self.mappers.len() as u64
    }

    fn combine_cost(&self, _key: &Row, a: &QValue, b: &QValue) -> u64 {
        match (a, b) {
            (QValue::TopK(x), QValue::TopK(y)) => (x.len() + y.len()).max(1) as u64,
            (QValue::Aggs(x), _) => x.len().max(1) as u64,
            _ => 1,
        }
    }

    fn record_bytes(&self, input: &Row) -> u64 {
        input.iter().map(Field::bytes).sum::<u64>() + 8
    }

    fn value_bytes(&self, key: &Row, v: &QValue) -> u64 {
        let key_bytes: u64 = key.iter().map(Field::bytes).sum();
        key_bytes
            + match v {
                QValue::Aggs(states) => states.len() as u64 * 16,
                QValue::Count(_) => 8,
                QValue::TopK(rows) => rows
                    .iter()
                    .map(|(f, r)| f.bytes() + r.iter().map(Field::bytes).sum::<u64>())
                    .sum(),
            }
    }
}

impl StageApp for RowStage {
    type Row = Row;

    fn render(&self, _key: &Row, output: &Vec<Row>) -> Vec<Row> {
        output.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, Expr, Predicate};

    fn int_row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Field::Int(v)).collect()
    }

    #[test]
    fn fused_mappers_filter_project_join() {
        let mut table = std::collections::HashMap::new();
        table.insert(Field::Int(1), vec![vec![Field::Str("one".into())]]);
        let stage = RowStage::new(
            vec![
                QueryOp::Filter(Predicate::Cmp {
                    left: Expr::Col(0),
                    op: CmpOp::Gt,
                    right: Expr::Lit(Field::Int(0)),
                }),
                QueryOp::Project(vec![Expr::Col(0)]),
                QueryOp::JoinStatic {
                    table: Arc::new(table),
                    key_col: 0,
                },
            ],
            None,
        )
        .unwrap();
        let mut out = Vec::new();
        stage.apply_mappers(&int_row(&[1, 99]), &mut out);
        assert_eq!(out, vec![vec![Field::Int(1), Field::Str("one".into())]]);

        out.clear();
        stage.apply_mappers(&int_row(&[0, 99]), &mut out); // filtered out
        assert!(out.is_empty());
        out.clear();
        stage.apply_mappers(&int_row(&[2, 99]), &mut out); // no join match
        assert!(out.is_empty());
    }

    #[test]
    fn group_by_aggregates() {
        let stage = RowStage::new(
            vec![],
            Some(QueryOp::GroupBy {
                cols: vec![0],
                aggs: vec![
                    AggFn::Count,
                    AggFn::Sum(1),
                    AggFn::Min(1),
                    AggFn::Max(1),
                    AggFn::Avg(1),
                ],
            }),
        )
        .unwrap();
        let mut emitted = Vec::new();
        stage.map(&int_row(&[7, 10]), &mut |k, v| emitted.push((k, v)));
        stage.map(&int_row(&[7, 20]), &mut |k, v| emitted.push((k, v)));
        let merged = stage.combine(&emitted[0].0, &emitted[0].1, &emitted[1].1);
        let rows = stage.reduce(&int_row(&[7]), &[&merged]);
        assert_eq!(rows, vec![int_row(&[7, 2, 30, 10, 20, 15])]);
    }

    #[test]
    fn topk_merge_respects_order_and_bound() {
        let a = vec![
            (Field::Int(9), int_row(&[9])),
            (Field::Int(5), int_row(&[5])),
        ];
        let b = vec![
            (Field::Int(7), int_row(&[7])),
            (Field::Int(1), int_row(&[1])),
        ];
        let merged = RowStage::merge_topk(&a, &b, 3, true);
        let keys: Vec<i64> = merged.iter().map(|(f, _)| f.as_int().unwrap()).collect();
        assert_eq!(keys, vec![9, 7, 5]);

        let asc = RowStage::merge_topk(&b, &a, 2, false);
        // Inputs must be presorted in the stage's order; here ascending
        // lists are the reverses.
        let a_asc: Vec<(Field, Row)> = a.into_iter().rev().collect();
        let b_asc: Vec<(Field, Row)> = b.into_iter().rev().collect();
        let merged = RowStage::merge_topk(&a_asc, &b_asc, 2, false);
        let keys: Vec<i64> = merged.iter().map(|(f, _)| f.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 5]);
        let _ = asc;
    }

    #[test]
    fn non_blocking_tail_operator_is_a_typed_error() {
        // A malformed job whose "blocking" operator cannot end a stage must
        // surface as a typed error, not a panic.
        let err = RowStage::new(
            vec![],
            Some(QueryOp::Filter(Predicate::Cmp {
                left: Expr::Col(0),
                op: CmpOp::Gt,
                right: Expr::Lit(Field::Int(0)),
            })),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::TrailingOperator { .. }), "{err}");
    }

    #[test]
    fn mismatched_partials_are_typed_errors() {
        let stage = RowStage::new(
            vec![],
            Some(QueryOp::GroupBy {
                cols: vec![0],
                aggs: vec![AggFn::Count],
            }),
        )
        .unwrap();
        // Count vs Aggs partials cannot merge.
        let err = stage
            .try_combine(&QValue::Count(1), &QValue::Aggs(vec![AggState::Count(1)]))
            .unwrap_err();
        assert!(
            matches!(err, QueryError::MismatchedAggregates { .. }),
            "{err}"
        );
        // Aggregate states of different kinds cannot merge either.
        let err = stage
            .try_combine(
                &QValue::Aggs(vec![AggState::Count(1)]),
                &QValue::Aggs(vec![AggState::Sum(2)]),
            )
            .unwrap_err();
        assert!(
            matches!(err, QueryError::MismatchedAggregates { .. }),
            "{err}"
        );
        // A top-k buffer is meaningless outside a top-k stage.
        let err = stage
            .try_combine(&QValue::TopK(vec![]), &QValue::TopK(vec![]))
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleValue { .. }), "{err}");
        // ...and so is reducing one under a group-by.
        let err = stage
            .try_reduce(&int_row(&[1]), &[&QValue::TopK(vec![])])
            .unwrap_err();
        assert!(matches!(err, QueryError::IncompatibleValue { .. }), "{err}");
    }

    #[test]
    fn distinct_counts_and_collect_repeats() {
        let stage = RowStage::new(vec![], Some(QueryOp::Distinct(vec![0]))).unwrap();
        let rows = stage.reduce(&int_row(&[3]), &[&QValue::Count(5)]);
        assert_eq!(rows, vec![int_row(&[3])]);

        let collect = RowStage::new(vec![], None).unwrap();
        let rows = collect.reduce(&int_row(&[4]), &[&QValue::Count(2)]);
        assert_eq!(rows, vec![int_row(&[4]), int_row(&[4])]);
    }
}
