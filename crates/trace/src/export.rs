//! Immutable trace snapshots and the three exporters: Chrome
//! `trace_event` JSON, folded-flamegraph text, and the metrics JSON blob
//! consumed by `crates/bench/src/report.rs`.

use std::fmt::Write as _;

use crate::json::{escape_string, format_f64};
use crate::span::{Span, SpanKind, Tracer};

/// A frozen, self-contained copy of a [`Tracer`]'s state. All exporters and
/// reconciliation queries run against this.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Track names, indexed by track id.
    pub tracks: Vec<String>,
    /// Spans in emission order.
    pub spans: Vec<Span>,
    /// Counters in stable (sorted) order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in stable (sorted) order.
    pub gauges: Vec<(String, f64)>,
}

impl TraceSnapshot {
    /// Captures the current state of `tracer`.
    pub fn capture(tracer: &Tracer) -> Self {
        TraceSnapshot {
            tracks: tracer.track_names(),
            spans: tracer.spans().to_vec(),
            counters: tracer
                .counters()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: tracer
                .gauges()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    fn track_index(&self, track: &str) -> Option<usize> {
        self.tracks.iter().position(|t| t == track)
    }

    /// Iterates spans on `track` with kind `kind`, optionally restricted to
    /// one run, in emission order.
    fn select<'a>(
        &'a self,
        track: &'a str,
        kind: SpanKind,
        run: Option<u64>,
    ) -> impl Iterator<Item = &'a Span> + 'a {
        let idx = self.track_index(track);
        self.spans.iter().filter(move |s| {
            Some(s.track.0) == idx && s.kind == kind && run.is_none_or(|r| s.run == r)
        })
    }

    /// Sum of the work units charged directly to spans of `kind` on
    /// `track` (optionally one run). Exact: u64 addition.
    pub fn work_total(&self, track: &str, kind: SpanKind, run: Option<u64>) -> u64 {
        self.select(track, kind, run)
            .fold(0u64, |acc, s| acc.saturating_add(s.work))
    }

    /// Sum of the simulated seconds charged directly to spans of `kind` on
    /// `track` (optionally one run), folded in emission order — the same
    /// order the engine accumulated them, so the result is bit-identical
    /// to the engine's own running sum.
    pub fn seconds_total(&self, track: &str, kind: SpanKind, run: Option<u64>) -> f64 {
        self.select(track, kind, run)
            .fold(0.0, |acc, s| acc + s.seconds)
    }

    /// Sum of the `key` argument over spans of `kind` on `track`.
    pub fn arg_total(&self, track: &str, kind: SpanKind, key: &str, run: Option<u64>) -> u64 {
        self.select(track, kind, run).fold(0u64, |acc, s| {
            let v = s
                .args
                .iter()
                .filter(|(k, _)| *k == key)
                .fold(0u64, |a, (_, v)| a.saturating_add(*v));
            acc.saturating_add(v)
        })
    }

    /// Number of spans of `kind` on `track` (optionally one run).
    pub fn span_count(&self, track: &str, kind: SpanKind, run: Option<u64>) -> usize {
        self.select(track, kind, run).count()
    }

    /// Value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Semicolon-joined `track;ancestors…;name` path of span `i`.
    fn path(&self, i: usize) -> String {
        let mut names = vec![self.spans[i].name.as_str()];
        let mut cur = self.spans[i].parent;
        while let Some(p) = cur {
            names.push(self.spans[p.0].name.as_str());
            cur = self.spans[p.0].parent;
        }
        let track = self
            .tracks
            .get(self.spans[i].track.0)
            .map_or("?", String::as_str);
        names.push(track);
        names.reverse();
        names.join(";")
    }

    /// Virtual-clock ticks charged directly to each span (its width minus
    /// its children's widths) — "self time" in profiler terms.
    fn self_ticks(&self) -> Vec<u64> {
        let mut child_ticks = vec![0u64; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                child_ticks[p.0] = child_ticks[p.0].saturating_add(s.ticks());
            }
        }
        self.spans
            .iter()
            .enumerate()
            .map(|(i, s)| s.ticks().saturating_sub(child_ticks[i]))
            .collect()
    }

    /// The `n` spans with the most self-work (work units charged directly),
    /// as `(path, work)` pairs. Ties break by emission order, so the result
    /// is deterministic.
    pub fn top_spans_by_self_work(&self, n: usize) -> Vec<(String, u64)> {
        let mut ranked: Vec<(usize, u64)> = self
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.work > 0)
            .map(|(i, s)| (i, s.work))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(n)
            .map(|(i, w)| (self.path(i), w))
            .collect()
    }

    /// Exports the trace in Chrome `trace_event` JSON array format
    /// (`chrome://tracing` / Perfetto). One metadata event names each
    /// track; every span becomes an `"X"` (complete) event with integer
    /// virtual-clock `ts`/`dur`. Emission order guarantees monotone
    /// non-decreasing `ts` within each `tid`.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for (tid, name) in self.tracks.iter().enumerate() {
            push_event(&mut out, &mut first, &format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape_string(name)
            ));
        }
        for s in &self.spans {
            let mut args = format!("\"run\":{}", s.run);
            if s.work > 0 {
                let _ = write!(args, ",\"work\":{}", s.work);
            }
            if s.seconds != 0.0 {
                let _ = write!(args, ",\"seconds\":{}", format_f64(s.seconds));
            }
            for (k, v) in &s.args {
                let _ = write!(args, ",\"{}\":{v}", escape_string(k));
            }
            push_event(&mut out, &mut first, &format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{{args}}}}}",
                s.track.0,
                s.start,
                s.ticks(),
                s.kind.label(),
                escape_string(&s.name),
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Exports the trace as folded-flamegraph text: one
    /// `track;span;…;leaf <self-ticks>` line per distinct stack, sorted
    /// lexicographically, suitable for `flamegraph.pl` and `inferno`.
    pub fn folded_flamegraph(&self) -> String {
        let self_ticks = self.self_ticks();
        let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (i, ticks) in self_ticks.iter().enumerate() {
            if *ticks == 0 {
                continue;
            }
            let slot = folded.entry(self.path(i)).or_insert(0);
            *slot = slot.saturating_add(*ticks);
        }
        let mut out = String::new();
        for (path, ticks) in folded {
            let _ = writeln!(out, "{path} {ticks}");
        }
        out
    }

    /// Exports the metrics snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "schema": "slider-trace-metrics-v1",
    ///   "counters": {"<name>": <u64>, ...},          // sorted by name
    ///   "gauges": {"<name>": <f64>, ...},            // sorted by name
    ///   "phases": {                                   // per track, sorted
    ///     "<track>": {
    ///       "<kind-label>": {"spans": n, "work": u64,
    ///                         "seconds": f64, "ticks": u64},
    ///       ...
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// Only kinds with at least one span on a track appear. This is the
    /// blob `crates/bench` embeds as the `breakdown` section of
    /// `BENCH_*.json`.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"slider-trace-metrics-v1\",\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", escape_string(k));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_string(k), format_f64(*v));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"phases\": {");
        let mut first_track = true;
        for track in &self.tracks {
            let mut body = String::new();
            let mut first_kind = true;
            for kind in SpanKind::ALL {
                let count = self.span_count(track, kind, None);
                if count == 0 {
                    continue;
                }
                let work = self.work_total(track, kind, None);
                let seconds = self.seconds_total(track, kind, None);
                let ticks = self
                    .select(track, kind, None)
                    .filter(|s| s.parent.is_none() || self.spans[s.parent.unwrap().0].kind != kind)
                    .fold(0u64, |acc, s| acc.saturating_add(s.ticks()));
                if !first_kind {
                    body.push(',');
                }
                first_kind = false;
                let _ = write!(
                    body,
                    "\n      \"{}\": {{\"spans\": {count}, \"work\": {work}, \"seconds\": {}, \"ticks\": {ticks}}}",
                    kind.label(),
                    format_f64(seconds)
                );
            }
            if body.is_empty() {
                continue;
            }
            if !first_track {
                out.push(',');
            }
            first_track = false;
            let _ = write!(out, "\n    \"{}\": {{{body}\n    }}", escape_string(track));
        }
        out.push_str(if first_track { "}\n}\n" } else { "\n  }\n}\n" });
        out
    }
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::span::Tracer;

    fn sample() -> TraceSnapshot {
        let mut t = Tracer::new();
        let tr = t.track("engine");
        t.set_run(0);
        let run = t.begin(tr, SpanKind::Run, "run #0");
        let m = t.begin(tr, SpanKind::Map, "map");
        t.leaf(tr, SpanKind::Map, "split 0", 10);
        t.leaf(tr, SpanKind::Map, "split 1", 4);
        t.end(m);
        t.leaf(tr, SpanKind::Reduce, "reduce", 6);
        t.end(run);
        let d = t.track("dcache");
        t.leaf_seconds(d, SpanKind::CacheRead, "read 1", 0.25);
        t.add("engine.map_tasks", 2);
        t.gauge("footprint", 1.5);
        TraceSnapshot::capture(&t)
    }

    #[test]
    fn totals_reconcile() {
        let snap = sample();
        assert_eq!(snap.work_total("engine", SpanKind::Map, Some(0)), 14);
        assert_eq!(snap.work_total("engine", SpanKind::Reduce, None), 6);
        assert_eq!(
            snap.seconds_total("dcache", SpanKind::CacheRead, None),
            0.25
        );
        assert_eq!(snap.counter("engine.map_tasks"), 2);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn chrome_trace_validates() {
        let snap = sample();
        let text = snap.chrome_trace();
        let complete = validate_chrome_trace(&text).unwrap();
        assert_eq!(complete, snap.spans.len());
    }

    #[test]
    fn folded_output_is_sorted_and_self_time() {
        let snap = sample();
        let folded = snap.folded_flamegraph();
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert!(folded.contains("engine;run #0;map;split 0 10"));
        // The container spans carry no self time.
        assert!(!folded.contains("engine;run #0;map "));
    }

    #[test]
    fn top_spans_rank_by_self_work() {
        let snap = sample();
        let top = snap.top_spans_by_self_work(2);
        assert_eq!(top[0], ("engine;run #0;map;split 0".to_string(), 10));
        assert_eq!(top[1], ("engine;run #0;reduce".to_string(), 6));
    }

    #[test]
    fn metrics_json_parses_and_carries_phases() {
        let snap = sample();
        let text = snap.metrics_json();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("slider-trace-metrics-v1")
        );
        let map = doc
            .get("phases")
            .and_then(|p| p.get("engine"))
            .and_then(|e| e.get("map"))
            .unwrap();
        assert_eq!(map.get("work").and_then(|v| v.as_f64()), Some(14.0));
    }
}
