//! Minimal, dependency-free JSON support: string escaping for the
//! exporters, a strict recursive-descent parser, and the Chrome-trace
//! validator used by CI's determinism gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. Non-finite values (which never occur
/// in well-formed traces) degrade to `0` so output is always valid JSON.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // `Display` for f64 round-trips, but bare integers like `3` are valid
    // JSON already; keep them as-is.
    s
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is normalized (sorted) by the map.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Returns the object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Returns the numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut out = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(out));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        out.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Validates an exported Chrome `trace_event` document: it must parse as a
/// JSON array of event objects, every `"X"` (complete) event must carry
/// `name`/`ts`/`dur`/`tid` with non-negative duration, and within each
/// `tid` the `ts` values must be monotone non-decreasing in file order —
/// the property CI's determinism gate checks.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let events = doc
        .as_array()
        .ok_or_else(|| "chrome trace must be a JSON array".to_string())?;
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut complete = 0usize;
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        if ph != "X" {
            continue;
        }
        complete += 1;
        event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ts = event
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        let dur = event
            .get("dur")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"dur\""))?;
        let tid = event
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing \"tid\""))?;
        if dur < 0.0 {
            return Err(format!("event {i}: negative dur {dur}"));
        }
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        let track = seconds_key(tid);
        if let Some(prev) = last_ts.get(&track) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(track, ts);
    }
    Ok(complete)
}

/// Buckets a `tid` number into a map key (tids are small non-negative
/// integers in our exports).
fn seconds_key(tid: f64) -> u64 {
    if tid.is_finite() && (0.0..9.0e15).contains(&tid) {
        // Guarded above: non-negative and below 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            tid as u64
        }
    } else {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validates_monotone_traces() {
        let good = r#"[
            {"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"engine"}},
            {"ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"name":"run"},
            {"ph":"X","pid":0,"tid":0,"ts":5,"dur":5,"name":"map"},
            {"ph":"X","pid":0,"tid":1,"ts":0,"dur":1,"name":"other"}
        ]"#;
        assert_eq!(validate_chrome_trace(good).unwrap(), 3);
        let bad = r#"[
            {"ph":"X","pid":0,"tid":0,"ts":5,"dur":1,"name":"a"},
            {"ph":"X","pid":0,"tid":0,"ts":4,"dur":1,"name":"b"}
        ]"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape_string("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }
}
