//! # slider-trace — deterministic tracing, metrics & profile export
//!
//! The Slider paper argues almost entirely through per-phase breakdowns
//! (Figure 9's map / contraction / reduce / movement split). This crate
//! gives the reproduction the same visibility: a span tree per windowed
//! run, a counters/gauges registry, and exporters for Chrome
//! `trace_event` JSON, folded-flamegraph text, and a metrics JSON blob
//! consumed by `slider-bench` reports.
//!
//! Three properties make it a correctness tool rather than logging:
//!
//! 1. **Virtual clock.** Spans are timestamped in modeled work units and
//!    simulated seconds — never wall-clock — so a trace is bit-identical
//!    across thread counts and reruns.
//! 2. **Exact reconciliation.** Every span is emitted at the same site
//!    that accumulates the engine's own statistics, carrying identical
//!    operands, so span totals reconcile *exactly* with `WorkBreakdown`,
//!    `RecoveryStats` and `RepairStats` (enforced by
//!    `tests/integration_trace.rs`).
//! 3. **Zero overhead when disabled.** The [`TraceSink`] handle threaded
//!    through the engine is an `Option` internally; the disabled sink
//!    costs one branch per call site and never locks or allocates.
//!
//! ```
//! use slider_trace::{SpanKind, TraceSink};
//!
//! let sink = TraceSink::enabled();
//! sink.with(|t| {
//!     let tr = t.track("engine");
//!     let run = t.begin(tr, SpanKind::Run, "run #0");
//!     t.leaf(tr, SpanKind::Map, "split 0", 42);
//!     t.end(run);
//!     t.add("engine.map_tasks", 1);
//! });
//! let snap = sink.snapshot().unwrap();
//! assert_eq!(snap.work_total("engine", SpanKind::Map, None), 42);
//! assert!(TraceSink::disabled().snapshot().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::cast_possible_truncation)]

pub mod json;

mod export;
mod span;

use std::sync::{Arc, Mutex};

pub use export::TraceSnapshot;
pub use json::{parse as parse_json, validate_chrome_trace, JsonValue};
pub use span::{seconds_to_ticks, Span, SpanId, SpanKind, Tracer, TrackId, TICKS_PER_SECOND};

/// Environment variable that force-enables tracing (mirrors
/// `SLIDER_THREADS`): set to anything except `0`, `false`, `off` or the
/// empty string.
pub const TRACE_ENV: &str = "SLIDER_TRACE";

/// A cheap, cloneable handle to a shared [`Tracer`] — or to nothing.
///
/// The engine threads one of these through `JobConfig`, the runtime, the
/// distributed cache and the cluster simulator. When disabled (the
/// default) every operation is a single `Option` branch; when enabled,
/// clones share the same tracer, so a job, its cache and its simulator
/// all write into one coherent trace.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Tracer>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceSink {
    /// The no-op sink: records nothing, costs one branch per call site.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A live sink backed by a fresh, empty [`Tracer`].
    pub fn enabled() -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Tracer::new()))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns `self` unchanged if already enabled; otherwise consults the
    /// [`TRACE_ENV`] environment variable (`SLIDER_TRACE`) and returns an
    /// enabled sink when it is set to a truthy value. This mirrors how
    /// `SLIDER_THREADS` overrides `JobConfig::threads`.
    pub fn resolve_env(self) -> Self {
        if self.is_enabled() {
            return self;
        }
        match std::env::var(TRACE_ENV) {
            Ok(v) if !matches!(v.as_str(), "" | "0" | "false" | "off") => Self::enabled(),
            _ => self,
        }
    }

    /// Runs `f` against the shared tracer when enabled; returns `None`
    /// without locking when disabled. All engine emission goes through
    /// this, always from the control thread.
    pub fn with<R>(&self, f: impl FnOnce(&mut Tracer) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut tracer = inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(f(&mut tracer))
    }

    /// Captures a frozen [`TraceSnapshot`] of everything recorded so far.
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        self.with(|t| TraceSnapshot::capture(t))
    }

    /// Convenience: the Chrome `trace_event` JSON export.
    pub fn chrome_trace(&self) -> Option<String> {
        self.snapshot().map(|s| s.chrome_trace())
    }

    /// Convenience: the folded-flamegraph export.
    pub fn folded_flamegraph(&self) -> Option<String> {
        self.snapshot().map(|s| s.folded_flamegraph())
    }

    /// Convenience: the metrics JSON blob.
    pub fn metrics_json(&self) -> Option<String> {
        self.snapshot().map(|s| s.metrics_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.with(|_| 1), None);
        assert!(sink.snapshot().is_none());
        assert!(sink.chrome_trace().is_none());
    }

    #[test]
    fn clones_share_one_tracer() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.with(|t| {
            let tr = t.track("engine");
            t.leaf(tr, SpanKind::Map, "x", 3);
        });
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.work_total("engine", SpanKind::Map, None), 3);
    }

    #[test]
    fn resolve_env_respects_existing_state() {
        // Note: we deliberately do not set the env var in tests (process
        // global); we only check the already-enabled fast path.
        let sink = TraceSink::enabled();
        sink.with(|t| t.add("k", 1));
        let resolved = sink.clone().resolve_env();
        assert_eq!(resolved.snapshot().unwrap().counter("k"), 1);
    }
}
