//! The deterministic span collector: virtual-clock tracks, the span tree,
//! and the counters/gauges registry.
//!
//! Everything here is driven by *modeled* quantities — work units and
//! simulated seconds — never wall-clock time, so a trace recorded at any
//! thread count is bit-identical to one recorded at any other.

use std::collections::BTreeMap;

/// Number of virtual-clock ticks per simulated second (1 tick = 1 ns).
pub const TICKS_PER_SECOND: f64 = 1_000_000_000.0;

/// Identifies a track — one horizontal lane of the trace with its own
/// virtual clock and span stack. Maps to a Chrome `tid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub usize);

/// Identifies a recorded span inside its [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub usize);

/// The span taxonomy: every span carries one of these stable phase tags so
/// exports and the reconciliation tests can aggregate without string
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Root span of one windowed run.
    Run,
    /// Map phase (parents) and per-split map tasks (leaves).
    Map,
    /// Shuffle barrier between map and contraction.
    Shuffle,
    /// Foreground contraction-tree update work.
    ContractionFg,
    /// Background contraction-tree update work (split processing).
    ContractionBg,
    /// Final reduce work.
    Reduce,
    /// Data-movement cost charged for window slides.
    Movement,
    /// Fault recovery: shard rebuilds and read-retry backoff.
    Recovery,
    /// Memo-cache repair (re-replication, master rebuild).
    Repair,
    /// Memo-cache scrub pass.
    Scrub,
    /// Garbage collection of dead cache objects.
    Gc,
    /// A read served (or failed) by the distributed memoization cache.
    CacheRead,
    /// A write into the distributed memoization cache.
    CacheWrite,
    /// A cluster-simulator stage schedule.
    SimStage,
    /// A pipeline or query stage boundary.
    Stage,
    /// Windowed-join delta probing (slider-join): index probes and
    /// cross-product recomputes.
    Join,
}

impl SpanKind {
    /// Every kind, in a stable order (used by exporters).
    pub const ALL: [SpanKind; 16] = [
        SpanKind::Run,
        SpanKind::Map,
        SpanKind::Shuffle,
        SpanKind::ContractionFg,
        SpanKind::ContractionBg,
        SpanKind::Reduce,
        SpanKind::Movement,
        SpanKind::Recovery,
        SpanKind::Repair,
        SpanKind::Scrub,
        SpanKind::Gc,
        SpanKind::CacheRead,
        SpanKind::CacheWrite,
        SpanKind::SimStage,
        SpanKind::Stage,
        SpanKind::Join,
    ];

    /// Stable lower-case label, used as the Chrome `cat` field and in the
    /// metrics snapshot.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Map => "map",
            SpanKind::Shuffle => "shuffle",
            SpanKind::ContractionFg => "contraction-fg",
            SpanKind::ContractionBg => "contraction-bg",
            SpanKind::Reduce => "reduce",
            SpanKind::Movement => "movement",
            SpanKind::Recovery => "recovery",
            SpanKind::Repair => "repair",
            SpanKind::Scrub => "scrub",
            SpanKind::Gc => "gc",
            SpanKind::CacheRead => "cache-read",
            SpanKind::CacheWrite => "cache-write",
            SpanKind::SimStage => "sim-stage",
            SpanKind::Stage => "stage",
            SpanKind::Join => "join",
        }
    }
}

/// One recorded span. `start`/`end` are virtual-clock ticks on the span's
/// track; `work` is the modeled work units charged directly to this span
/// (zero for pure container spans) and `seconds` the simulated seconds
/// charged directly to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Track the span lives on.
    pub track: TrackId,
    /// Enclosing span on the same track, if any.
    pub parent: Option<SpanId>,
    /// Phase tag.
    pub kind: SpanKind,
    /// Human-readable name (`"split 3"`, `"partition 0"`, …).
    pub name: String,
    /// Windowed-run index the span belongs to.
    pub run: u64,
    /// Virtual start tick.
    pub start: u64,
    /// Virtual end tick (`>= start`).
    pub end: u64,
    /// Modeled work units charged directly to this span.
    pub work: u64,
    /// Simulated seconds charged directly to this span.
    pub seconds: f64,
    /// Small, ordered key/value payload (byte counts, task counts, …).
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Width of the span on the virtual clock.
    pub fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

#[derive(Debug)]
struct TrackState {
    name: String,
    cursor: u64,
    stack: Vec<SpanId>,
}

/// Converts simulated seconds to virtual-clock ticks (1 ns per tick),
/// clamped to the representable range so pathological inputs cannot wrap.
pub fn seconds_to_ticks(seconds: f64) -> u64 {
    let ns = (seconds * TICKS_PER_SECOND).round();
    if !ns.is_finite() || ns <= 0.0 {
        0
    } else if ns >= 9_007_199_254_740_992.0 {
        // 2^53: beyond here f64 cannot represent every integer anyway.
        9_007_199_254_740_992
    } else {
        // Guarded above: `ns` is a non-negative integer below 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            ns as u64
        }
    }
}

/// The deterministic trace collector. All emission happens on the control
/// thread of the engine (never inside worker closures), so the recorded
/// order — and therefore every export — is independent of `SLIDER_THREADS`.
#[derive(Debug, Default)]
pub struct Tracer {
    tracks: Vec<TrackState>,
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    run: u64,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds or creates the track named `name`.
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.tracks.iter().position(|t| t.name == name) {
            return TrackId(i);
        }
        self.tracks.push(TrackState {
            name: name.to_string(),
            cursor: 0,
            stack: Vec::new(),
        });
        TrackId(self.tracks.len() - 1)
    }

    /// Tags subsequently recorded spans with windowed-run index `run`.
    pub fn set_run(&mut self, run: u64) {
        self.run = run;
    }

    /// Current run tag.
    pub fn run(&self) -> u64 {
        self.run
    }

    /// Opens a container span on `track`. Its width on the virtual clock is
    /// determined by the leaves recorded before the matching [`Tracer::end`].
    pub fn begin(&mut self, track: TrackId, kind: SpanKind, name: impl Into<String>) -> SpanId {
        let cursor = self.tracks[track.0].cursor;
        let parent = self.tracks[track.0].stack.last().copied();
        let id = SpanId(self.spans.len());
        self.spans.push(Span {
            track,
            parent,
            kind,
            name: name.into(),
            run: self.run,
            start: cursor,
            end: cursor,
            work: 0,
            seconds: 0.0,
            args: Vec::new(),
        });
        self.tracks[track.0].stack.push(id);
        id
    }

    /// Closes a container span opened with [`Tracer::begin`], setting its
    /// end to the track's current cursor.
    pub fn end(&mut self, id: SpanId) {
        let track = self.spans[id.0].track;
        let stack = &mut self.tracks[track.0].stack;
        if let Some(pos) = stack.iter().rposition(|s| *s == id) {
            stack.truncate(pos);
        }
        let cursor = self.tracks[track.0].cursor;
        let span = &mut self.spans[id.0];
        span.end = cursor.max(span.start);
    }

    /// Records a leaf span charged with `work` modeled work units; the
    /// track's virtual clock advances by the same amount (1 tick per unit).
    pub fn leaf(
        &mut self,
        track: TrackId,
        kind: SpanKind,
        name: impl Into<String>,
        work: u64,
    ) -> SpanId {
        let id = self.leaf_ticks(track, kind, name, work);
        self.spans[id.0].work = work;
        id
    }

    /// Records a leaf span charged with `seconds` simulated seconds; the
    /// track's virtual clock advances by the equivalent tick count.
    pub fn leaf_seconds(
        &mut self,
        track: TrackId,
        kind: SpanKind,
        name: impl Into<String>,
        seconds: f64,
    ) -> SpanId {
        let id = self.leaf_ticks(track, kind, name, seconds_to_ticks(seconds));
        self.spans[id.0].seconds = seconds;
        id
    }

    fn leaf_ticks(
        &mut self,
        track: TrackId,
        kind: SpanKind,
        name: impl Into<String>,
        ticks: u64,
    ) -> SpanId {
        let start = self.tracks[track.0].cursor;
        let end = start.saturating_add(ticks);
        self.tracks[track.0].cursor = end;
        let parent = self.tracks[track.0].stack.last().copied();
        let id = SpanId(self.spans.len());
        self.spans.push(Span {
            track,
            parent,
            kind,
            name: name.into(),
            run: self.run,
            start,
            end,
            work: 0,
            seconds: 0.0,
            args: Vec::new(),
        });
        id
    }

    /// Attaches an ordered `key = value` argument to `span`.
    pub fn arg(&mut self, span: SpanId, key: &'static str, value: u64) {
        self.spans[span.0].args.push((key, value));
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&mut self, counter: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let slot = self.counters.entry(counter.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Recorded spans, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Track names, indexed by [`TrackId`].
    pub fn track_names(&self) -> Vec<String> {
        self.tracks.iter().map(|t| t.name.clone()).collect()
    }

    /// Stable ordered view of the counters registry.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Stable ordered view of the gauges registry.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_advance_the_virtual_clock() {
        let mut t = Tracer::new();
        let tr = t.track("engine");
        let run = t.begin(tr, SpanKind::Run, "run #0");
        t.leaf(tr, SpanKind::Map, "split 0", 10);
        t.leaf(tr, SpanKind::Map, "split 1", 5);
        t.end(run);
        let spans = t.spans();
        assert_eq!(spans[0].ticks(), 15);
        assert_eq!(spans[1].start, 0);
        assert_eq!(spans[2].start, 10);
        assert_eq!(spans[2].end, 15);
        assert_eq!(spans[1].parent, Some(SpanId(0)));
    }

    #[test]
    fn tracks_have_independent_clocks() {
        let mut t = Tracer::new();
        let a = t.track("a");
        let b = t.track("b");
        t.leaf(a, SpanKind::Map, "x", 7);
        let s = t.leaf(b, SpanKind::Reduce, "y", 3);
        assert_eq!(t.spans()[s.0].start, 0);
        assert_eq!(t.track("a"), a);
    }

    #[test]
    fn seconds_to_ticks_is_clamped_and_exact() {
        assert_eq!(seconds_to_ticks(0.0), 0);
        assert_eq!(seconds_to_ticks(-1.0), 0);
        assert_eq!(seconds_to_ticks(f64::NAN), 0);
        assert_eq!(seconds_to_ticks(1.5), 1_500_000_000);
        assert_eq!(seconds_to_ticks(1.0e80), 9_007_199_254_740_992);
    }

    #[test]
    fn counters_ignore_zero_and_saturate() {
        let mut t = Tracer::new();
        t.add("x", 0);
        assert!(t.counters().is_empty());
        t.add("x", u64::MAX);
        t.add("x", 5);
        assert_eq!(t.counters()["x"], u64::MAX);
    }
}
