//! Per-run metrics: the reproduction's *work* metric and its breakdown.

use slider_cluster::SimReport;
use slider_core::PhaseWork;
use slider_dcache::{CacheStats, RepairStats};

/// Work performed by one run, split by phase (the paper's Figure 9
/// breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkBreakdown {
    /// Map-phase compute work (including map-side combining).
    pub map: u64,
    /// Foreground contraction-phase work (combiner invocations on the
    /// critical path).
    pub contraction_fg: PhaseWork,
    /// Background pre-processing work (split mode).
    pub contraction_bg: PhaseWork,
    /// Reduce-phase compute work.
    pub reduce: u64,
    /// Work-unit equivalent of data movement (shuffle + memo reads),
    /// charged at [`crate::JobConfig::work_per_byte`].
    pub movement: u64,
}

impl WorkBreakdown {
    /// Total foreground work: what the paper's *work* metric counts for the
    /// incremental run itself.
    pub fn foreground_total(&self) -> u64 {
        self.map + self.contraction_fg.work + self.reduce + self.movement
    }

    /// Total including background pre-processing.
    pub fn grand_total(&self) -> u64 {
        self.foreground_total() + self.contraction_bg.work
    }
}

/// Recovery work of one run, metered separately from regular work so
/// fault overheads are visible (the paper's fault-tolerance evaluation):
/// lost memoized state degrades to extra foreground computation, never a
/// wrong answer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Reduce partitions whose memoized trees were lost and rebuilt.
    pub lost_partitions: usize,
    /// Work units spent rebuilding lost contraction state.
    pub rebuild_work: u64,
    /// Combiner merges performed during rebuilds.
    pub rebuild_merges: u64,
    /// Keys whose contraction state was recomputed only because of a loss.
    pub keys_recomputed: usize,
    /// Memo-cache reads that failed outright and degraded to
    /// recomputation (replica failover exhausted).
    pub cache_misses_recovered: u64,
    /// Failed cache reads whose object was missing from the index
    /// entirely — recomputation is the only way back.
    pub cache_not_found: u64,
    /// Failed cache reads whose object was indexed but unreachable — a
    /// node recovery or background repair can restore it without
    /// recomputation.
    pub cache_unavailable: u64,
    /// `Unavailable` cache reads retried after draining pending repairs.
    pub read_retries: u64,
    /// Simulated seconds spent backing off between read retries.
    pub backoff_seconds: f64,
}

impl RecoveryStats {
    /// True when this run performed no recovery work at all.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Everything measured about one run of a windowed job.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Monotonic run index (0 = initial run).
    pub run: u64,
    /// Work breakdown.
    pub work: WorkBreakdown,
    /// Map tasks executed this run.
    pub map_tasks: usize,
    /// Splits whose map output was reused from memoization.
    pub map_reused: usize,
    /// Memoized contraction sub-computations reused.
    pub nodes_reused: u64,
    /// Keys whose output was recomputed by Reduce.
    pub keys_reduced: usize,
    /// Keys whose previous output was reused untouched.
    pub keys_reused: usize,
    /// Bytes of fresh map output shuffled to reducers.
    pub shuffle_bytes: u64,
    /// Bytes of memoized state read by the contraction phase.
    pub memo_read_bytes: u64,
    /// Total memoization footprint after the run (Figure 13(c)).
    pub memo_footprint_bytes: u64,
    /// Input bytes currently in the window.
    pub window_input_bytes: u64,
    /// Simulated cluster schedule (when simulation is configured).
    pub sim: Option<SimReport>,
    /// Simulated background-processing schedule, separate from the
    /// foreground makespan (split mode).
    pub sim_background: Option<SimReport>,
    /// Memoization-cache statistics delta for this run (when a cache is
    /// configured).
    pub cache: Option<CacheStats>,
    /// Recovery work of this run (all zero for fault-free runs).
    pub recovery: RecoveryStats,
    /// Background self-healing work of this run — re-replication, scrub,
    /// master rebuild (all zero for fault-free runs and whenever the cache
    /// has repair and scrubbing disabled).
    pub repair: RepairStats,
}

impl RunStats {
    /// End-to-end simulated runtime of the foreground run, if simulated.
    pub fn time_seconds(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.makespan)
    }

    /// Simulated map-stage duration, if simulated.
    pub fn map_seconds(&self) -> Option<f64> {
        self.sim
            .as_ref()
            .and_then(|s| s.stages.first())
            .map(|s| s.duration)
    }

    /// Simulated contraction+reduce stage duration, if simulated.
    pub fn reduce_seconds(&self) -> Option<f64> {
        self.sim
            .as_ref()
            .and_then(|s| s.stages.get(1))
            .map(|s| s.duration)
    }

    /// Simulated background pre-processing duration (0 when none ran).
    pub fn background_seconds(&self) -> f64 {
        self.sim_background.as_ref().map_or(0.0, |s| s.makespan)
    }

    /// Simulated seconds the cluster spent on recovery (partial attempts
    /// killed by crashes plus losing speculative duplicates), if simulated.
    pub fn recovery_seconds(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.recovery_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut w = WorkBreakdown {
            map: 10,
            reduce: 5,
            movement: 2,
            ..Default::default()
        };
        w.contraction_fg.record(3);
        w.contraction_bg.record(4);
        assert_eq!(w.foreground_total(), 20);
        assert_eq!(w.grand_total(), 24);
    }

    #[test]
    fn time_accessors_handle_missing_sim() {
        let stats = RunStats::default();
        assert!(stats.time_seconds().is_none());
        assert_eq!(stats.background_seconds(), 0.0);
    }
}
