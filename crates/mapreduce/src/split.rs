//! Input splits: the unit of Map-task work and of window sliding.

use std::fmt;
use std::sync::Arc;

/// Identifies an input split. Ids must be unique over a job's lifetime
/// (monotonically increasing split ids are the natural choice for a
/// stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SplitId(pub u64);

impl fmt::Display for SplitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split{}", self.0)
    }
}

/// A fixed partition of the input, processed by a single Map task (§2.2).
#[derive(Debug, Clone)]
pub struct Split<R> {
    id: SplitId,
    records: Arc<Vec<R>>,
}

impl<R> Split<R> {
    /// Creates a split with the given id and records.
    pub fn from_records(id: u64, records: Vec<R>) -> Self {
        Split {
            id: SplitId(id),
            records: Arc::new(records),
        }
    }

    /// The split's identity.
    pub fn id(&self) -> SplitId {
        self.id
    }

    /// The records the Map task will consume.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the split holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Chops `records` into consecutive splits of `split_size` records, with
/// ids starting at `first_id`. The final split may be shorter.
///
/// ```
/// use slider_mapreduce::Split;
/// let splits = slider_mapreduce::make_splits(10, vec![1, 2, 3, 4, 5], 2);
/// assert_eq!(splits.len(), 3);
/// assert_eq!(splits[0].id().0, 10);
/// assert_eq!(splits[2].records(), &[5]);
/// ```
///
/// # Panics
///
/// Panics if `split_size` is zero.
pub fn make_splits<R>(first_id: u64, records: Vec<R>, split_size: usize) -> Vec<Split<R>> {
    assert!(split_size > 0, "split size must be positive");
    let mut splits = Vec::with_capacity(records.len().div_ceil(split_size));
    let mut id = first_id;
    let mut batch = Vec::with_capacity(split_size);
    for record in records {
        batch.push(record);
        if batch.len() == split_size {
            splits.push(Split::from_records(id, std::mem::take(&mut batch)));
            id += 1;
        }
    }
    if !batch.is_empty() {
        splits.push(Split::from_records(id, batch));
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_splits_partitions_in_order() {
        let splits = make_splits(0, (0..10).collect(), 4);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].records(), &[0, 1, 2, 3]);
        assert_eq!(splits[1].records(), &[4, 5, 6, 7]);
        assert_eq!(splits[2].records(), &[8, 9]);
        assert_eq!(splits[1].id(), SplitId(1));
    }

    #[test]
    fn empty_input_gives_no_splits() {
        let splits = make_splits::<u8>(0, vec![], 4);
        assert!(splits.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_split_size_panics() {
        let _ = make_splits::<u8>(0, vec![1], 0);
    }

    #[test]
    fn split_accessors() {
        let s = Split::from_records(3, vec!["x"]);
        assert_eq!(s.id().to_string(), "split3");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
