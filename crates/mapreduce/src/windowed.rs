//! The windowed job driver: initial runs, incremental slides, work
//! metering, cluster simulation and memoization-cache integration.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use slider_cluster::{
    simulate_traced, ClusterSpec, FaultPlan, MachineId, SchedulerPolicy, SharedClock, Task,
};
use slider_core::{build_tree, Phase, TreeCx, TreeError, TreeKind, UpdateStats, WindowAggregator};
use slider_dcache::{
    CacheConfig, CacheError, CacheStats, DistributedCache, NodeId, ObjectId, RepairStats,
    SharedCache,
};
use slider_trace::{SpanId, SpanKind, TraceSink};

use crate::app::{AppCombiner, MapReduceApp};
use crate::error::JobError;
use crate::fault::JobFaultPlan;
use crate::retry::RetryPolicy;
use crate::runtime::Runtime;
use crate::shared::EngineShared;
use crate::shuffle::partition_of;
use crate::split::{Split, SplitId};
use crate::stats::{RecoveryStats, RunStats};

/// How a windowed job processes slides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Vanilla Hadoop: recompute the whole window from scratch every run.
    Recompute,
    /// Memoization-only incremental baseline (paper §2).
    Strawman,
    /// Self-adjusting contraction trees (§3–§4).
    Slider {
        /// Which tree family member structures the contraction phase.
        tree: TreeKind,
        /// Enable split background/foreground processing (§4; only
        /// meaningful for rotating and coalescing trees).
        split_processing: bool,
    },
}

impl ExecMode {
    /// Slider with folding trees (variable-width windows).
    pub fn slider_folding() -> Self {
        ExecMode::Slider {
            tree: TreeKind::Folding,
            split_processing: false,
        }
    }

    /// Slider with randomized folding trees.
    pub fn slider_randomized() -> Self {
        ExecMode::Slider {
            tree: TreeKind::RandomizedFolding,
            split_processing: false,
        }
    }

    /// Slider with rotating trees (fixed-width windows).
    pub fn slider_rotating(split_processing: bool) -> Self {
        ExecMode::Slider {
            tree: TreeKind::Rotating,
            split_processing,
        }
    }

    /// Slider with coalescing trees (append-only windows).
    pub fn slider_coalescing(split_processing: bool) -> Self {
        ExecMode::Slider {
            tree: TreeKind::Coalescing,
            split_processing,
        }
    }

    /// Slider with the amortized-O(1) two-stack aggregator.
    pub fn slider_two_stack() -> Self {
        ExecMode::Slider {
            tree: TreeKind::TwoStack,
            split_processing: false,
        }
    }

    /// Slider with the worst-case-O(1) DABA twin-stack aggregator.
    pub fn slider_daba() -> Self {
        ExecMode::Slider {
            tree: TreeKind::Daba,
            split_processing: false,
        }
    }

    /// Slider with the memory-lean DABA Lite aggregator.
    pub fn slider_daba_lite() -> Self {
        ExecMode::Slider {
            tree: TreeKind::DabaLite,
            split_processing: false,
        }
    }

    /// The aggregation structure driving the contraction phase, if any.
    pub fn tree_kind(&self) -> Option<TreeKind> {
        match self {
            ExecMode::Recompute => None,
            ExecMode::Strawman => Some(TreeKind::Strawman),
            ExecMode::Slider { tree, .. } => Some(*tree),
        }
    }

    /// Whether split processing is active.
    pub fn split_processing(&self) -> bool {
        matches!(self, ExecMode::Slider { split_processing: true, tree }
            if tree.supports_split_processing())
    }

    fn is_fixed_width(&self) -> bool {
        self.tree_kind() == Some(TreeKind::Rotating)
    }

    fn is_append_only(&self) -> bool {
        self.tree_kind() == Some(TreeKind::Coalescing)
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Recompute => f.write_str("recompute"),
            ExecMode::Strawman => f.write_str("strawman"),
            ExecMode::Slider {
                tree,
                split_processing,
            } => {
                write!(
                    f,
                    "slider-{tree}{}",
                    if *split_processing { "+split" } else { "" }
                )
            }
        }
    }
}

/// Cluster-simulation settings for the *time* metric.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Scheduling policy for task placement.
    pub policy: SchedulerPolicy,
}

impl SimulationConfig {
    /// The paper's 24-worker cluster (§7.1) with Slider's hybrid scheduler.
    pub fn paper_defaults() -> Self {
        SimulationConfig {
            cluster: ClusterSpec::paper_cluster(),
            policy: SchedulerPolicy::hybrid_default(),
        }
    }
}

/// Windowed-job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Number of reduce partitions.
    pub partitions: usize,
    /// Splits per bucket (`w` in §4.1). Only used by fixed-width jobs.
    pub bucket_width: usize,
    /// Bucket slots in a fixed-width window (`N` in §4.1).
    pub window_buckets: usize,
    /// Work units charged per byte of data movement (shuffle plus
    /// memoization reads/writes). Encodes that data-intensive applications
    /// pay for I/O even when compute is memoized.
    pub work_per_byte: f64,
    /// Optional cluster simulation (the *time* metric).
    pub simulation: Option<SimulationConfig>,
    /// Optional distributed memoization cache model.
    pub cache: Option<CacheConfig>,
    /// Optional scripted fault injection: simulated machine crashes and
    /// stragglers (applied to each run's schedule), cache-node failures,
    /// and forced memo-state loss. Outputs never change under any plan;
    /// only work/time metrics and [`RunStats::recovery`] do.
    pub faults: Option<JobFaultPlan>,
    /// Retry/backoff policy for `Unavailable` dcache reads (self-healing
    /// caches only): each retry backs off in simulated time and drains
    /// pending repairs. The default reproduces the engine's historical
    /// constants (2 retries, doubling backoff) bit-for-bit. Shared with
    /// `slider-serve`, which applies the same policy to tenant dispatch.
    pub retry: RetryPolicy,
    /// Worker threads for the parallel runtime. `0` means automatic: the
    /// `SLIDER_THREADS` environment variable if set, else the machine's
    /// available parallelism. Thread count never affects outputs or the
    /// modeled work/time metrics — only wall-clock speed.
    pub threads: usize,
    /// Trace sink for the deterministic observability subsystem
    /// ([`slider_trace`]). Disabled by default: a disabled sink costs one
    /// branch per instrumentation site and the job behaves bit-identically
    /// to an uninstrumented build. A disabled sink is still upgraded at
    /// job construction when the `SLIDER_TRACE` environment variable is
    /// truthy (mirroring `SLIDER_THREADS`).
    pub trace: TraceSink,
}

impl JobConfig {
    /// A configuration with sensible defaults for `mode`: 8 partitions,
    /// 1-split buckets, 8-bucket fixed windows, no simulation, no cache.
    pub fn new(mode: ExecMode) -> Self {
        JobConfig {
            mode,
            partitions: 8,
            bucket_width: 1,
            window_buckets: 8,
            work_per_byte: 1.0 / 1024.0,
            simulation: None,
            cache: None,
            faults: None,
            retry: RetryPolicy::default(),
            threads: 0,
            trace: TraceSink::disabled(),
        }
    }

    /// Sets the number of reduce partitions. Builder-style.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Sets the fixed-width window geometry: `buckets` slots of `width`
    /// splits each. Builder-style.
    pub fn with_buckets(mut self, buckets: usize, width: usize) -> Self {
        self.window_buckets = buckets;
        self.bucket_width = width;
        self
    }

    /// Enables cluster simulation. Builder-style.
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.simulation = Some(sim);
        self
    }

    /// Enables the memoization-cache model. Builder-style.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Installs a scripted fault plan. Builder-style.
    pub fn with_faults(mut self, faults: JobFaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the data-movement work rate. Builder-style.
    pub fn with_work_per_byte(mut self, rate: f64) -> Self {
        self.work_per_byte = rate;
        self
    }

    /// Sets the dcache-read retry/backoff policy. Builder-style.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the worker-thread count (`0` = automatic). Builder-style.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a trace sink (see [`slider_trace::TraceSink`]).
    /// Builder-style. Pass [`TraceSink::enabled`] to collect spans and
    /// counters; clones of the sink share one collector, so the caller
    /// can export after running the job.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    fn validate(&self) -> Result<(), JobError> {
        if self.partitions == 0 {
            return Err(JobError::BadConfig("partitions must be positive".into()));
        }
        if self.bucket_width == 0 || self.window_buckets == 0 {
            return Err(JobError::BadConfig(
                "bucket geometry must be positive".into(),
            ));
        }
        if self.work_per_byte < 0.0 || !self.work_per_byte.is_finite() {
            return Err(JobError::BadConfig(
                "work_per_byte must be finite and >= 0".into(),
            ));
        }
        self.retry
            .validate()
            .map_err(|m| JobError::BadConfig(format!("retry policy: {m}")))?;
        if let Some(faults) = &self.faults {
            faults
                .validate()
                .map_err(|m| JobError::BadConfig(format!("fault plan: {m}")))?;
            if let Some(sim) = &self.simulation {
                let machines = sim.cluster.len();
                let bad = faults
                    .crashes
                    .iter()
                    .map(|c| c.machine)
                    .chain(faults.stragglers.iter().map(|s| s.machine))
                    .find(|&m| m >= machines);
                if let Some(machine) = bad {
                    return Err(JobError::BadConfig(format!(
                        "fault plan targets machine {machine} but the cluster has {machines}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One mapped split held in the window.
struct SplitEntry<A: MapReduceApp> {
    id: SplitId,
    /// Map output, pre-partitioned: `by_partition[p]` holds this split's
    /// map-side-combined values destined for reduce partition `p`.
    by_partition: Arc<Vec<BTreeMap<A::Key, A::Value>>>,
    map_work: u64,
    input_bytes: u64,
    /// Map-output bytes per partition (shuffle accounting).
    out_bytes: Arc<Vec<u64>>,
}

impl<A: MapReduceApp> SplitEntry<A> {
    fn output_bytes(&self) -> u64 {
        self.out_bytes.iter().sum()
    }
}

impl<A: MapReduceApp> Clone for SplitEntry<A> {
    fn clone(&self) -> Self {
        SplitEntry {
            id: self.id,
            by_partition: Arc::clone(&self.by_partition),
            map_work: self.map_work,
            input_bytes: self.input_bytes,
            out_bytes: Arc::clone(&self.out_bytes),
        }
    }
}

/// Per-reduce-partition incremental state, self-contained so the shared
/// [`Runtime`] can hand every shard to a different worker: the trees, the
/// memo footprint, this shard's slice of the output map (keys are
/// hash-partitioned in [`crate::shuffle`], so shard key sets are disjoint),
/// and nothing borrowed from the job.
struct PartitionShard<A: MapReduceApp> {
    #[allow(clippy::type_complexity)]
    trees: HashMap<A::Key, Box<dyn WindowAggregator<A::Key, A::Value>>>,
    memo_footprint: u64,
    output: BTreeMap<A::Key, A::Output>,
}

impl<A: MapReduceApp> Default for PartitionShard<A> {
    fn default() -> Self {
        PartitionShard {
            trees: HashMap::new(),
            memo_footprint: 0,
            output: BTreeMap::new(),
        }
    }
}

// Deep copy for checkpoints. Rebuilding a tree from the retained window
// would reproduce the *answers* but not the memoization statistics
// (merges, nodes_reused, memo footprint) of later runs, so checkpoints
// clone the aggregator state exactly via `WindowAggregator::boxed_clone`.
impl<A: MapReduceApp> Clone for PartitionShard<A> {
    fn clone(&self) -> Self {
        PartitionShard {
            trees: self
                .trees
                .iter()
                .map(|(k, tree)| (k.clone(), tree.boxed_clone()))
                .collect(),
            memo_footprint: self.memo_footprint,
            output: self.output.clone(),
        }
    }
}

/// Per-partition work of one run, used for precise task construction in the
/// cluster simulation.
#[derive(Debug, Clone, Copy, Default)]
struct PartitionWork {
    fg_work: u64,
    bg_work: u64,
    reduce_work: u64,
    memo_read_bytes: u64,
    shuffle_bytes: u64,
}

/// Aggregate outcome of the contraction+reduce phase.
#[derive(Default)]
struct PhaseOutcome {
    tree_stats: UpdateStats,
    reduce_work: u64,
    keys_reduced: usize,
    keys_reused: usize,
    per_partition: Vec<PartitionWork>,
}

/// What one shard reports back from a contraction+reduce run. Everything is
/// owned, so workers never touch shared job state; the job folds these in
/// shard-index order, which keeps all metering deterministic.
struct ShardOutcome<A: MapReduceApp> {
    tree_stats: UpdateStats,
    work: PartitionWork,
    keys_reduced: usize,
    keys_reused: usize,
    /// Output changes (`Some` = upsert, `None` = delete), applied to the
    /// merged read view in shard order. Shard key sets are disjoint, so the
    /// application order across shards cannot change the result — only the
    /// iteration order, which is fixed.
    deltas: Vec<(A::Key, Option<A::Output>)>,
}

impl<A: MapReduceApp> Default for ShardOutcome<A> {
    fn default() -> Self {
        ShardOutcome {
            tree_stats: UpdateStats::default(),
            work: PartitionWork::default(),
            keys_reduced: 0,
            keys_reused: 0,
            deltas: Vec::new(),
        }
    }
}

/// Shared read-only inputs of one slide, borrowed by every shard worker.
struct SlideCx<'a, A: MapReduceApp> {
    app: &'a A,
    combiner: &'a AppCombiner<A>,
    config: &'a JobConfig,
    window: &'a VecDeque<SplitEntry<A>>,
    removed: &'a [SplitEntry<A>],
    added: &'a [SplitEntry<A>],
    was_full_buckets: bool,
    kind: TreeKind,
    split_processing: bool,
}

/// Shared read-only inputs of one interior splice, borrowed by every shard
/// worker. Unlike a slide, a splice touches the window's *interior*:
/// `window` is the post-splice window, and the affected split range starts
/// at window position `at` (insertions sit at `window[at..at + added.len()]`;
/// evictions were drained from `window[at..at + removed.len()]`).
struct SpliceCx<'a, A: MapReduceApp> {
    app: &'a A,
    combiner: &'a AppCombiner<A>,
    config: &'a JobConfig,
    /// The window *after* the splice was applied.
    window: &'a VecDeque<SplitEntry<A>>,
    /// Window position of the splice (0 = oldest split).
    at: usize,
    /// Entries drained from the interior (bulk evictions).
    removed: &'a [SplitEntry<A>],
    /// Entries inserted into the interior (late-record insertions).
    added: &'a [SplitEntry<A>],
    kind: TreeKind,
}

/// A sliding-window MapReduce job.
///
/// See the crate-level docs for a complete example.
pub struct WindowedJob<A: MapReduceApp> {
    app: Arc<A>,
    combiner: AppCombiner<A>,
    config: JobConfig,
    runtime: Runtime,
    window: VecDeque<SplitEntry<A>>,
    shards: Vec<PartitionShard<A>>,
    /// Merged read view over the shard outputs (see [`WindowedJob::output`]).
    output: BTreeMap<A::Key, A::Output>,
    used_split_ids: HashSet<u64>,
    run_index: u64,
    /// Env-resolved copy of `config.trace`; every instrumentation site in
    /// the job goes through this sink. All emission happens on the control
    /// thread, in deterministic fold order, so traces are bit-identical
    /// across thread counts and reruns.
    trace: TraceSink,
    /// The memoization cache. Standalone jobs wrap a private cache here
    /// (namespace 0); jobs built with [`WindowedJob::with_shared`] hold a
    /// clone of the service-wide handle instead.
    cache: Option<SharedCache>,
    /// Object-id namespace this job's memoized state lives under. `0` for
    /// standalone jobs — `ObjectId::namespaced(0, p) == ObjectId(p)`, so
    /// legacy cache contents and stats are bit-identical.
    cache_ns: u32,
    /// Shared simulated-cluster clock, advanced by each run's makespan
    /// when the cluster simulation is on. `None` for standalone jobs.
    clock: Option<SharedClock>,
    /// Per-partition flag: the partition's memoized state was written to
    /// the cache by a previous run, so the next run is expected to read it
    /// back. Reads are only issued (and can only fail) for such objects.
    cached_objects: Vec<bool>,
}

/// Alias kept for readability in signatures: a run returns its statistics.
pub type RunResult = RunStats;

/// Deep, self-contained checkpoint of a job's mutable state: the retained
/// window, every shard's aggregator trees (cloned exactly — see
/// [`WindowedJob::checkpoint`]), the output view, split-id ledger, run
/// counter, and the job's cache namespace and per-partition cached-object
/// flags. It does **not** capture infrastructure (runtime, trace sink,
/// cache *contents*, clock): those are service-level state, checkpointed
/// once by the host rather than once per job.
///
/// A checkpoint is a value: restoring never consumes it, so one checkpoint
/// can seed any number of resumed twins.
pub struct JobCheckpoint<A: MapReduceApp> {
    app: Arc<A>,
    config: JobConfig,
    window: VecDeque<SplitEntry<A>>,
    shards: Vec<PartitionShard<A>>,
    output: BTreeMap<A::Key, A::Output>,
    used_split_ids: HashSet<u64>,
    run_index: u64,
    cache_ns: u32,
    cached_objects: Vec<bool>,
}

impl<A: MapReduceApp> JobCheckpoint<A> {
    /// Runs completed at capture time.
    #[must_use]
    pub fn run_index(&self) -> u64 {
        self.run_index
    }

    /// Splits retained in the captured window.
    #[must_use]
    pub fn window_splits(&self) -> usize {
        self.window.len()
    }

    /// The cache namespace the captured job's memoized objects live under.
    #[must_use]
    pub fn cache_namespace(&self) -> u32 {
        self.cache_ns
    }
}

impl<A: MapReduceApp> Clone for JobCheckpoint<A> {
    fn clone(&self) -> Self {
        JobCheckpoint {
            app: Arc::clone(&self.app),
            config: self.config.clone(),
            window: self.window.clone(),
            shards: self.shards.clone(),
            output: self.output.clone(),
            used_split_ids: self.used_split_ids.clone(),
            run_index: self.run_index,
            cache_ns: self.cache_ns,
            cached_objects: self.cached_objects.clone(),
        }
    }
}

/// Converts modeled data movement into work units: `bytes × work_per_byte`
/// floored into u64. The truncation is the point — work is an integral
/// unit count — and Rust's saturating float casts make the conversion
/// total, so the narrowing is deliberate here.
fn movement_work(moved_bytes: u64, work_per_byte: f64) -> u64 {
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let work = (moved_bytes as f64 * work_per_byte) as u64;
    work
}

/// Runs one Map task: maps every record of `split`, combining map-side per
/// partition, and meters the work.
fn map_one_split<A: MapReduceApp>(app: &A, parts: usize, split: &Split<A::Input>) -> SplitEntry<A> {
    let mut by_partition: Vec<BTreeMap<A::Key, A::Value>> =
        (0..parts).map(|_| BTreeMap::new()).collect();
    let mut map_work = 0u64;
    let mut input_bytes = 0u64;
    for record in split.records() {
        map_work += app.map_cost(record);
        input_bytes += app.record_bytes(record);
        let mut emit = |key: A::Key, value: A::Value| {
            let p = partition_of(&key, parts);
            match by_partition[p].entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // Map-side combine, charged to map work.
                    let key = e.key().clone();
                    map_work += app.combine_cost(&key, e.get(), &value);
                    let merged = app.combine(&key, e.get(), &value);
                    *e.get_mut() = merged;
                }
            }
        };
        app.map(record, &mut emit);
    }
    let out_bytes: Vec<u64> = by_partition
        .iter()
        .map(|m| m.iter().map(|(k, v)| app.value_bytes(k, v)).sum())
        .collect();
    SplitEntry {
        id: split.id(),
        by_partition: Arc::new(by_partition),
        map_work,
        input_bytes,
        out_bytes: Arc::new(out_bytes),
    }
}

impl<A: MapReduceApp> fmt::Debug for WindowedJob<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowedJob")
            .field("mode", &self.config.mode)
            .field("window_splits", &self.window.len())
            .field("keys", &self.output.len())
            .field("run", &self.run_index)
            .finish()
    }
}

impl<A: MapReduceApp> WindowedJob<A> {
    /// Creates a job for `app` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::BadConfig`] for inconsistent configurations
    /// (zero partitions, zero bucket geometry, or a non-commutative
    /// combiner with a fixed-width window).
    pub fn new(app: A, config: JobConfig) -> Result<Self, JobError> {
        let trace = config.trace.clone().resolve_env();
        let cache = config.cache.clone().map(|cache_config| {
            let mut cache = DistributedCache::new(cache_config);
            cache.attach_trace(trace.clone());
            SharedCache::new(cache)
        });
        let runtime = Runtime::auto(config.threads).with_trace(trace.clone());
        Self::build(app, config, runtime, trace, cache, 0, None)
    }

    /// Creates a job attached to service-wide infrastructure: the shared
    /// runtime, trace sink, memoization cache (under a freshly allocated
    /// object-id namespace) and simulator clock of `shared`, instead of
    /// private per-job instances. A job whose config scripts no fault
    /// plan inherits the shared default plan.
    ///
    /// `config.threads` and `config.trace` are ignored — the shared
    /// runtime and sink win; see [`EngineShared`].
    ///
    /// # Errors
    ///
    /// Returns [`JobError::BadConfig`] for inconsistent configurations
    /// (as [`WindowedJob::new`]), or when `config.cache` requests a
    /// private cache alongside the shared one.
    pub fn with_shared(app: A, config: JobConfig, shared: &EngineShared) -> Result<Self, JobError> {
        if config.cache.is_some() && shared.cache().is_some() {
            return Err(JobError::BadConfig(
                "shared-infrastructure jobs must not configure a private cache".into(),
            ));
        }
        let mut config = config;
        if config.faults.is_none() {
            config.faults = shared.fault_plan().cloned();
        }
        let trace = shared.trace().clone();
        let cache = shared.cache().cloned();
        let cache_ns = if cache.is_some() {
            shared.allocate_namespace()
        } else {
            0
        };
        let private_cache = config.cache.clone().map(|cache_config| {
            let mut cache = DistributedCache::new(cache_config);
            cache.attach_trace(trace.clone());
            SharedCache::new(cache)
        });
        Self::build(
            app,
            config,
            shared.runtime().clone(),
            trace,
            cache.or(private_cache),
            cache_ns,
            shared.clock().cloned(),
        )
    }

    fn build(
        app: A,
        config: JobConfig,
        runtime: Runtime,
        trace: TraceSink,
        cache: Option<SharedCache>,
        cache_ns: u32,
        clock: Option<SharedClock>,
    ) -> Result<Self, JobError> {
        config.validate()?;
        if config.mode.is_fixed_width() && !app.is_commutative() {
            return Err(JobError::BadConfig(
                "fixed-width (rotating) windows require a commutative combiner".into(),
            ));
        }
        let app = Arc::new(app);
        let combiner = AppCombiner::new(Arc::clone(&app));
        let shards = (0..config.partitions)
            .map(|_| PartitionShard::default())
            .collect();
        let cached_objects = vec![false; config.partitions];
        Ok(WindowedJob {
            app,
            combiner,
            config,
            runtime,
            window: VecDeque::new(),
            shards,
            output: BTreeMap::new(),
            used_split_ids: HashSet::new(),
            run_index: 0,
            trace,
            cache,
            cache_ns,
            clock,
            cached_objects,
        })
    }

    /// The object id partition `p`'s memoized state is cached under —
    /// namespaced so jobs sharing one cache never collide.
    fn object_id(&self, partition: usize) -> ObjectId {
        ObjectId::namespaced(self.cache_ns, partition as u64)
    }

    /// The cache namespace this job's objects live under (`0` standalone).
    pub fn cache_namespace(&self) -> u32 {
        self.cache_ns
    }

    /// The memoization cache handle, if one is attached.
    pub fn shared_cache(&self) -> Option<&SharedCache> {
        self.cache.as_ref()
    }

    /// The current per-key output of the job.
    pub fn output(&self) -> &BTreeMap<A::Key, A::Output> {
        &self.output
    }

    /// The configuration in use.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// The parallel runtime executing this job's per-shard phases. Shared
    /// with downstream pipeline stages so the whole query inherits it.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The trace sink this job emits to (env-resolved at construction).
    /// Disabled unless [`JobConfig::with_trace`] installed an enabled sink
    /// or `SLIDER_TRACE` was truthy when the job was built.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Number of splits currently in the window.
    pub fn window_splits(&self) -> usize {
        self.window.len()
    }

    /// Total memoization footprint, in modeled bytes.
    pub fn memo_footprint_bytes(&self) -> u64 {
        self.shards.iter().map(|p| p.memo_footprint).sum()
    }

    /// Captures a deep checkpoint of the job's mutable state.
    ///
    /// Aggregator trees are cloned *exactly* (not rebuilt from the window):
    /// a rebuild would reproduce the answers but diverge on memoization
    /// statistics of later runs, breaking the restored-twin bit-identity
    /// contract. Cache contents, the runtime, trace sink and clock are not
    /// captured — the host checkpoints those once, at service level.
    #[must_use]
    pub fn checkpoint(&self) -> JobCheckpoint<A> {
        JobCheckpoint {
            app: Arc::clone(&self.app),
            config: self.config.clone(),
            window: self.window.clone(),
            shards: self.shards.clone(),
            output: self.output.clone(),
            used_split_ids: self.used_split_ids.clone(),
            run_index: self.run_index,
            cache_ns: self.cache_ns,
            cached_objects: self.cached_objects.clone(),
        }
    }

    /// Reconstructs a job from `checkpoint`, attached to `shared`
    /// infrastructure — the restore counterpart of
    /// [`WindowedJob::with_shared`]. The checkpoint's cache namespace is
    /// reused verbatim (nothing is allocated), so the job finds its
    /// memoized objects exactly where the captured job left them; the host
    /// is responsible for restoring the shared cache's contents and
    /// namespace watermark first.
    ///
    /// The checkpoint is borrowed, not consumed: its shards are deep-cloned
    /// again, so one checkpoint restores any number of twins.
    ///
    /// # Errors
    ///
    /// [`JobError::BadConfig`] if the captured config fails validation
    /// (possible only for checkpoints doctored by hand) or requests a
    /// private cache alongside the shared one.
    pub fn restore_with_shared(
        checkpoint: &JobCheckpoint<A>,
        shared: &EngineShared,
    ) -> Result<Self, JobError> {
        if checkpoint.config.cache.is_some() && shared.cache().is_some() {
            return Err(JobError::BadConfig(
                "shared-infrastructure jobs must not configure a private cache".into(),
            ));
        }
        checkpoint.config.validate()?;
        Ok(WindowedJob {
            app: Arc::clone(&checkpoint.app),
            combiner: AppCombiner::new(Arc::clone(&checkpoint.app)),
            config: checkpoint.config.clone(),
            runtime: shared.runtime().clone(),
            window: checkpoint.window.clone(),
            shards: checkpoint.shards.clone(),
            output: checkpoint.output.clone(),
            used_split_ids: checkpoint.used_split_ids.clone(),
            run_index: checkpoint.run_index,
            trace: shared.trace().clone(),
            cache: shared.cache().cloned(),
            cache_ns: checkpoint.cache_ns,
            clock: shared.clock().cloned(),
            cached_objects: checkpoint.cached_objects.clone(),
        })
    }

    /// Runs the initial computation over `splits` (the whole first window).
    ///
    /// # Errors
    ///
    /// Fails if the job already ran, a split id repeats, or the splits
    /// violate the window geometry.
    pub fn initial_run(&mut self, splits: Vec<Split<A::Input>>) -> Result<RunStats, JobError> {
        if self.run_index != 0 || !self.window.is_empty() {
            return Err(JobError::ModeViolation(
                "initial_run may only run once".into(),
            ));
        }
        self.advance(0, splits)
    }

    /// Slides the window: drops the oldest `remove_splits` splits, appends
    /// `added`, and updates the output incrementally (or from scratch in
    /// [`ExecMode::Recompute`]).
    ///
    /// # Errors
    ///
    /// Fails on window-discipline violations (see [`JobError`]); the job
    /// state is unchanged on error.
    pub fn advance(
        &mut self,
        remove_splits: usize,
        added: Vec<Split<A::Input>>,
    ) -> Result<RunStats, JobError> {
        self.validate_slide(remove_splits, &added)?;
        let (run_span, recovery, repair_before) = self.begin_run()?;

        let was_full_buckets = self.config.mode.is_fixed_width()
            && self.window.len() == self.config.window_buckets * self.config.bucket_width;

        // ---- Map phase: run Map tasks for the new splits. ---------------
        let new_entries = self.map_splits(&added);
        let removed: Vec<SplitEntry<A>> = self.window.drain(..remove_splits).collect();
        self.window.extend(new_entries.iter().cloned());
        for split in &added {
            self.used_split_ids.insert(split.id().0);
        }

        let stats = self.map_phase_stats(&new_entries);
        self.trace_map_phase(&stats, &new_entries);

        // ---- Contraction + Reduce phase. ---------------------------------
        let outcome = match self.config.mode {
            ExecMode::Recompute => self.run_recompute(),
            _ => self.run_incremental(&removed, &new_entries, was_full_buckets)?,
        };
        Ok(self.finish_run(
            stats,
            outcome,
            &new_entries,
            recovery,
            repair_before,
            run_span,
        ))
    }

    /// Splices late splits into the *interior* of the window so that the
    /// first inserted split lands at window position `at` (0 = oldest;
    /// `at == window_splits()` appends), updating the output incrementally.
    ///
    /// This is the event-time late-data path: a record admitted after its
    /// epoch already closed belongs between splits that are both still in
    /// the window, where [`WindowedJob::advance`] cannot put it. Trees with
    /// native interior splices ([`TreeKind::supports_splice`]) absorb the
    /// insertion in one bulk splice; every other aggregator rebuilds the
    /// affected keys from the post-splice window, with the rebuild work
    /// charged to this run's foreground contraction breakdown — outputs are
    /// identical either way, only the metered work differs.
    ///
    /// # Errors
    ///
    /// [`JobError::SpliceOutOfRange`] if `at` exceeds the window;
    /// [`JobError::ModeViolation`] for fixed-width (rotating) jobs, whose
    /// positional bucket geometry admits no interior splices;
    /// [`JobError::DuplicateSplit`] for reused split ids. The job state is
    /// unchanged on error.
    pub fn insert_splits_at(
        &mut self,
        at: usize,
        added: Vec<Split<A::Input>>,
    ) -> Result<RunStats, JobError> {
        self.check_splice_mode(false)?;
        if at > self.window.len() {
            return Err(JobError::SpliceOutOfRange {
                at,
                count: added.len(),
                window: self.window.len(),
            });
        }
        self.check_fresh_ids(&added)?;
        let (run_span, recovery, repair_before) = self.begin_run()?;

        // ---- Map phase: new splits are mapped exactly as in a slide. -----
        let new_entries = self.map_splits(&added);
        for (offset, entry) in new_entries.iter().enumerate() {
            self.window.insert(at + offset, entry.clone());
        }
        for split in &added {
            self.used_split_ids.insert(split.id().0);
        }

        let stats = self.map_phase_stats(&new_entries);
        self.trace_map_phase(&stats, &new_entries);

        // ---- Contraction + Reduce phase. ---------------------------------
        let outcome = match self.config.mode {
            ExecMode::Recompute => self.run_recompute(),
            _ => self.run_splice(at, &[], &new_entries)?,
        };
        Ok(self.finish_run(
            stats,
            outcome,
            &new_entries,
            recovery,
            repair_before,
            run_span,
        ))
    }

    /// Evicts the contiguous split range `[at, at + count)` from the
    /// *interior* of the window in one bulk splice (0 = oldest), updating
    /// the output incrementally.
    ///
    /// Bursty event-time streams close several epochs at once; the stale
    /// region they displace need not start at the window's front, which is
    /// all [`WindowedJob::advance`] can drop. Trees with native interior
    /// splices ([`TreeKind::supports_splice`]) excise the range in one bulk
    /// splice; every other aggregator rebuilds the affected keys from the
    /// post-splice window (work charged to this run's foreground
    /// contraction breakdown).
    ///
    /// # Errors
    ///
    /// [`JobError::SpliceOutOfRange`] if the range exceeds the window;
    /// [`JobError::ModeViolation`] for fixed-width (rotating) jobs and for
    /// append-only (coalescing) jobs, which never evict. The job state is
    /// unchanged on error.
    pub fn evict_splits_range(&mut self, at: usize, count: usize) -> Result<RunStats, JobError> {
        self.check_splice_mode(true)?;
        if at
            .checked_add(count)
            .is_none_or(|end| end > self.window.len())
        {
            return Err(JobError::SpliceOutOfRange {
                at,
                count,
                window: self.window.len(),
            });
        }
        let (run_span, recovery, repair_before) = self.begin_run()?;

        // ---- Map phase: nothing maps; the evicted entries leave the window.
        let removed: Vec<SplitEntry<A>> = self.window.drain(at..at + count).collect();
        let stats = self.map_phase_stats(&[]);
        self.trace_map_phase(&stats, &[]);

        // ---- Contraction + Reduce phase. ---------------------------------
        let outcome = match self.config.mode {
            ExecMode::Recompute => self.run_recompute(),
            _ => self.run_splice(at, &removed, &[])?,
        };
        Ok(self.finish_run(stats, outcome, &[], recovery, repair_before, run_span))
    }

    // ------------------------------------------------------------------
    // Shared run scaffolding (slides and splices)
    // ------------------------------------------------------------------

    /// Opens this run's trace span and applies its scripted faults
    /// (recovery is metered apart from the regular work breakdown).
    /// Returns the span, the recovery accumulator seeded by fault
    /// handling, and the repair-stats baseline for the end-of-run delta.
    fn begin_run(&mut self) -> Result<(Option<SpanId>, RecoveryStats, RepairStats), JobError> {
        let run_span = self.trace.with(|t| {
            t.set_run(self.run_index);
            let tr = t.track("engine");
            t.begin(tr, SpanKind::Run, format!("run #{}", self.run_index))
        });
        let mut recovery = RecoveryStats::default();
        let repair_before = self
            .cache
            .as_ref()
            .map(|cache| cache.with(|c| c.repair_stats()))
            .unwrap_or_default();
        self.apply_planned_faults(&mut recovery)?;
        Ok((run_span, recovery, repair_before))
    }

    /// Map-phase statistics shared by slides and splices: `new_entries`
    /// were mapped this run, everything else in the (already updated)
    /// window is reused — except under [`ExecMode::Recompute`], which
    /// re-maps and re-shuffles the whole window every run.
    fn map_phase_stats(&self, new_entries: &[SplitEntry<A>]) -> RunStats {
        let mut stats = RunStats {
            run: self.run_index,
            ..Default::default()
        };
        stats.map_tasks = new_entries.len();
        stats.work.map = new_entries.iter().map(|e| e.map_work).sum();
        stats.shuffle_bytes = new_entries.iter().map(|e| e.output_bytes()).sum();
        if self.config.mode == ExecMode::Recompute {
            stats.map_tasks = self.window.len();
            stats.work.map = self.window.iter().map(|e| e.map_work).sum();
            stats.shuffle_bytes = self.window.iter().map(|e| e.output_bytes()).sum();
        } else {
            stats.map_reused = self.window.len() - new_entries.len();
        }
        stats
    }

    /// Emits the map-phase spans and counters: one Map leaf per executed
    /// map task, in deterministic task order; leaf works sum exactly to
    /// `stats.work.map`, the shuffle leaf carries `stats.shuffle_bytes`.
    fn trace_map_phase(&self, stats: &RunStats, new_entries: &[SplitEntry<A>]) {
        self.trace.with(|t| {
            let tr = t.track("engine");
            let map_span = t.begin(tr, SpanKind::Map, "map");
            let mapped: Vec<(u64, u64, u64)> = if self.config.mode == ExecMode::Recompute {
                self.window
                    .iter()
                    .map(|e| (e.id.0, e.map_work, e.input_bytes))
                    .collect()
            } else {
                new_entries
                    .iter()
                    .map(|e| (e.id.0, e.map_work, e.input_bytes))
                    .collect()
            };
            for (id, map_work, input_bytes) in mapped {
                let leaf = t.leaf(tr, SpanKind::Map, format!("split {id}"), map_work);
                t.arg(leaf, "input_bytes", input_bytes);
            }
            t.end(map_span);
            let shuffle = t.leaf(tr, SpanKind::Shuffle, "shuffle", 0);
            t.arg(shuffle, "bytes", stats.shuffle_bytes);
            t.add("engine.map_tasks", stats.map_tasks as u64);
            t.add("engine.map_reused", stats.map_reused as u64);
            t.add("engine.shuffle_bytes", stats.shuffle_bytes);
        });
    }

    /// Shared tail of every run (slide or splice): folds the contraction
    /// outcome into `stats`, emits the contraction/reduce/background
    /// spans, refreshes footprints, charges data movement, runs the
    /// cluster simulation and cache model, meters recovery and repair,
    /// closes the run span and bumps the run index.
    fn finish_run(
        &mut self,
        mut stats: RunStats,
        outcome: PhaseOutcome,
        new_entries: &[SplitEntry<A>],
        mut recovery: RecoveryStats,
        repair_before: RepairStats,
        run_span: Option<SpanId>,
    ) -> RunStats {
        let trace = self.trace.clone();
        stats.work.contraction_fg = outcome.tree_stats.foreground;
        stats.work.contraction_bg = outcome.tree_stats.background;
        stats.nodes_reused = outcome.tree_stats.reused;
        stats.work.reduce = outcome.reduce_work;
        stats.keys_reduced = outcome.keys_reduced;
        stats.keys_reused = outcome.keys_reused;
        stats.memo_read_bytes = outcome.tree_stats.bytes_read;

        // Per-partition contraction and reduce leaves (shard-fold order).
        // Foreground leaf works sum to `stats.work.contraction_fg.work`,
        // reduce leaves to `stats.work.reduce`, background leaves (their
        // own track: off the critical path) to `contraction_bg.work`.
        trace.with(|t| {
            let tr = t.track("engine");
            let fg = t.begin(tr, SpanKind::ContractionFg, "contraction-fg");
            for (p, pw) in outcome.per_partition.iter().enumerate() {
                if pw.fg_work > 0 {
                    t.leaf(
                        tr,
                        SpanKind::ContractionFg,
                        format!("partition {p}"),
                        pw.fg_work,
                    );
                }
            }
            t.end(fg);
            let reduce = t.begin(tr, SpanKind::Reduce, "reduce");
            for (p, pw) in outcome.per_partition.iter().enumerate() {
                if pw.reduce_work > 0 {
                    t.leaf(
                        tr,
                        SpanKind::Reduce,
                        format!("partition {p}"),
                        pw.reduce_work,
                    );
                }
            }
            t.end(reduce);
            if outcome.per_partition.iter().any(|pw| pw.bg_work > 0) {
                let bg_track = t.track("background");
                let bg = t.begin(bg_track, SpanKind::ContractionBg, "contraction-bg");
                for (p, pw) in outcome.per_partition.iter().enumerate() {
                    if pw.bg_work > 0 {
                        t.leaf(
                            bg_track,
                            SpanKind::ContractionBg,
                            format!("partition {p}"),
                            pw.bg_work,
                        );
                    }
                }
                t.end(bg);
            }
            t.add("engine.keys_reduced", stats.keys_reduced as u64);
            t.add("engine.keys_reused", stats.keys_reused as u64);
            t.add("engine.nodes_reused", stats.nodes_reused);
            t.add("engine.merges_fg", outcome.tree_stats.foreground.merges);
            t.add("engine.merges_bg", outcome.tree_stats.background.merges);
            t.add("engine.memo_read_bytes", outcome.tree_stats.bytes_read);
            t.add(
                "engine.memo_written_bytes",
                outcome.tree_stats.bytes_written,
            );
        });

        // Refresh shard footprints (a per-shard tree walk, parallel too).
        let combiner = &self.combiner;
        self.runtime.map_mut(&mut self.shards, |_, shard| {
            shard.refresh_footprint(combiner)
        });
        stats.memo_footprint_bytes = self.memo_footprint_bytes();
        stats.window_input_bytes = self.window.iter().map(|e| e.input_bytes).sum();

        // Data movement charged as work.
        let moved_bytes =
            stats.shuffle_bytes + stats.memo_read_bytes + outcome.tree_stats.bytes_written;
        stats.work.movement = movement_work(moved_bytes, self.config.work_per_byte);
        trace.with(|t| {
            let tr = t.track("engine");
            let movement = t.leaf(tr, SpanKind::Movement, "movement", stats.work.movement);
            t.arg(movement, "moved_bytes", moved_bytes);
            t.gauge(
                "engine.memo_footprint_bytes",
                stats.memo_footprint_bytes as f64,
            );
            t.gauge("engine.window_splits", self.window.len() as f64);
        });

        // ---- Cluster simulation (time metric). ---------------------------
        if let Some(sim) = self.config.simulation.clone() {
            let (fg, bg) = self.build_sim(&sim, &stats, new_entries, &outcome);
            stats.sim = Some(fg);
            stats.sim_background = bg;
        }

        // ---- Memoization-cache model. -------------------------------------
        if self.cache.is_some() {
            stats.cache = Some(self.play_cache_traffic(&mut recovery));
            self.run_cache_maintenance();
        }
        stats.recovery = recovery;
        trace.with(|t| {
            t.add(
                "recovery.lost_partitions",
                stats.recovery.lost_partitions as u64,
            );
            t.add(
                "recovery.keys_recomputed",
                stats.recovery.keys_recomputed as u64,
            );
            t.add(
                "recovery.cache_misses_recovered",
                stats.recovery.cache_misses_recovered,
            );
            t.add("recovery.cache_not_found", stats.recovery.cache_not_found);
            t.add(
                "recovery.cache_unavailable",
                stats.recovery.cache_unavailable,
            );
            t.add("recovery.read_retries", stats.recovery.read_retries);
        });
        if let Some(cache) = &self.cache {
            stats.repair = cache.with(|c| c.repair_stats()).delta_since(&repair_before);
            // Repair traffic rides the same network as the job; account it
            // in the simulated schedule as off-critical-path background
            // bytes/seconds so makespans stay comparable.
            if let Some(sim) = &mut stats.sim {
                sim.attach_repair_traffic(
                    stats.repair.repair_bytes,
                    stats.repair.repair_seconds + stats.repair.scrub_seconds,
                );
            }
            // Run-level repair/scrub summary spans carry the exact f64
            // deltas stored in `stats.repair`, so span seconds reconcile
            // bit-for-bit with `RepairStats` (the fine-grained dcache-track
            // spans reconcile via u64 counters instead: float telescoping
            // deltas are not exactly refoldable).
            trace.with(|t| {
                let tr = t.track("repair");
                let repair =
                    t.leaf_seconds(tr, SpanKind::Repair, "repair", stats.repair.repair_seconds);
                t.arg(repair, "enqueued", stats.repair.enqueued);
                t.arg(repair, "repaired_objects", stats.repair.repaired_objects);
                t.arg(repair, "copies_restored", stats.repair.copies_restored);
                t.arg(repair, "repair_bytes", stats.repair.repair_bytes);
                let scrub =
                    t.leaf_seconds(tr, SpanKind::Scrub, "scrub", stats.repair.scrub_seconds);
                t.arg(scrub, "scrubbed_copies", stats.repair.scrubbed_copies);
                t.arg(scrub, "scrub_bytes", stats.repair.scrub_bytes);
            });
        }
        trace.with(|t| {
            if let Some(span) = run_span {
                t.end(span);
            }
        });

        // A shared simulator clock accrues each run's foreground makespan:
        // the cluster was busy for that long in virtual time.
        if let (Some(clock), Some(sim)) = (&self.clock, &stats.sim) {
            clock.advance(sim.makespan);
        }

        self.run_index += 1;
        stats
    }

    /// Crashes a memoization-cache node (failure injection): its memory
    /// tier is lost; reads transparently fall back to persistent replicas.
    /// No-op when no cache is configured.
    pub fn fail_cache_node(&mut self, node: usize) {
        if let Some(cache) = &self.cache {
            cache.with(|c| c.fail_node(NodeId(node)));
        }
    }

    /// Recovers a previously failed cache node. No-op without a cache.
    pub fn recover_cache_node(&mut self, node: usize) {
        if let Some(cache) = &self.cache {
            cache.with(|c| c.recover_node(NodeId(node)));
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Applies this run's scripted faults before the slide: cache-node
    /// recoveries, then failures, then forced memo loss. Lost partitions
    /// rebuild their contraction state immediately by replaying the
    /// current (pre-slide) window through the initial-run path, so the
    /// slide that follows proceeds exactly as in a fault-free job — the
    /// combiner's associativity makes the rebuilt trees answer-equivalent
    /// even where their internal shape differs. All rebuild work lands in
    /// [`RecoveryStats`], never in the regular work breakdown.
    fn apply_planned_faults(&mut self, recovery: &mut RecoveryStats) -> Result<(), JobError> {
        let Some(plan) = self.config.faults.clone() else {
            return Ok(());
        };
        let run = self.run_index;
        for node in plan.cache_recoveries_for_run(run) {
            self.recover_cache_node(node);
        }
        for node in plan.cache_failures_for_run(run) {
            self.fail_cache_node(node);
        }
        if let Some(cache) = &self.cache {
            for (partition, node) in plan.corruptions_for_run(run) {
                if partition < self.config.partitions {
                    let object = ObjectId::namespaced(self.cache_ns, partition as u64);
                    cache.with(|c| {
                        if node < c.config().nodes {
                            c.corrupt_object(object, NodeId(node));
                        }
                    });
                }
            }
            if plan.loses_master_before(run) {
                // The master crashes and restarts: the index is gone and is
                // rebuilt synchronously from the live nodes' inventories
                // before the run proceeds. Objects with no surviving copy
                // read NotFound below and recompute in the foreground.
                cache.with(|c| {
                    c.lose_master();
                    c.rebuild_master();
                });
            }
        }
        let lost: Vec<usize> = plan
            .lost_partitions(run)
            .into_iter()
            .filter(|&p| p < self.shards.len())
            .collect();
        if lost.is_empty() || self.config.mode.tree_kind().is_none() {
            // Nothing scripted, or vanilla recompute holds no memoized
            // state a loss could destroy.
            return Ok(());
        }
        self.rebuild_lost_shards(&lost, recovery)
    }

    /// Drops and rebuilds the memoized state of `lost` partitions from the
    /// pre-slide window. Shard outputs are left untouched: they were
    /// correct before the loss and the rebuild reproduces equivalent
    /// trees, so recomputing them could only confirm the same values.
    fn rebuild_lost_shards(
        &mut self,
        lost: &[usize],
        recovery: &mut RecoveryStats,
    ) -> Result<(), JobError> {
        let kind = self
            .config
            .mode
            .tree_kind()
            .expect("caller checked incremental mode");
        let window_entries: Vec<SplitEntry<A>> = self.window.iter().cloned().collect();
        // Replaying the whole window with nothing removed re-enters the
        // initial-fill path of every tree family (`rotate` sees zero
        // pre-existing buckets, `slide` sees only additions).
        let cx = SlideCx {
            app: &*self.app,
            combiner: &self.combiner,
            config: &self.config,
            window: &self.window,
            removed: &[],
            added: &window_entries,
            was_full_buckets: false,
            kind,
            split_processing: false,
        };
        for &p in lost {
            let shard = &mut self.shards[p];
            if shard.trees.is_empty() {
                // Nothing memoized yet (e.g. a loss scripted before the
                // initial run): nothing to recover.
                continue;
            }
            shard.trees.clear();
            shard.memo_footprint = 0;
            if let Some(cache) = &self.cache {
                // The replicated object is gone too; the next cache read
                // fails over and ultimately misses, metered below.
                let object = ObjectId::namespaced(self.cache_ns, p as u64);
                cache.with(|c| c.lose_object(object));
            }
            let mut stats = UpdateStats::default();
            let recomputed = if kind == TreeKind::Rotating {
                shard.rotate(p, &cx, &mut stats)?
            } else {
                shard.slide(p, &cx, &mut stats)?
            };
            recovery.lost_partitions += 1;
            recovery.keys_recomputed += recomputed.len();
            let rebuild_work = stats.foreground.work + stats.background.work;
            let rebuild_merges = stats.foreground.merges + stats.background.merges;
            recovery.rebuild_work += rebuild_work;
            recovery.rebuild_merges += rebuild_merges;
            // Rebuild leaves carry the same work operand accumulated into
            // `RecoveryStats::rebuild_work`, so the recovery track
            // reconciles exactly.
            self.trace.with(|t| {
                let tr = t.track("recovery");
                let leaf = t.leaf(
                    tr,
                    SpanKind::Recovery,
                    format!("rebuild partition {p}"),
                    rebuild_work,
                );
                t.arg(leaf, "keys", recomputed.len() as u64);
                t.arg(leaf, "merges", rebuild_merges);
            });
        }
        Ok(())
    }

    fn validate_slide(
        &self,
        remove_splits: usize,
        added: &[Split<A::Input>],
    ) -> Result<(), JobError> {
        if remove_splits > self.window.len() {
            return Err(JobError::RemoveExceedsWindow {
                requested: remove_splits,
                window: self.window.len(),
            });
        }
        self.check_fresh_ids(added)?;
        let mode = self.config.mode;
        if mode.is_append_only() && remove_splits != 0 {
            return Err(JobError::ModeViolation(
                "append-only (coalescing) jobs cannot remove splits".into(),
            ));
        }
        if mode.is_fixed_width() {
            let w = self.config.bucket_width;
            if !remove_splits.is_multiple_of(w) || added.len() % w != 0 {
                return Err(JobError::ModeViolation(format!(
                    "fixed-width slides must be whole buckets of {w} splits"
                )));
            }
            let capacity = self.config.window_buckets * w;
            let full = self.window.len() == capacity;
            if full && remove_splits != added.len() {
                return Err(JobError::ModeViolation(
                    "a full fixed-width window must remove as many buckets as it adds".into(),
                ));
            }
            if !full {
                if remove_splits != 0 {
                    return Err(JobError::ModeViolation(
                        "fixed-width windows cannot shrink while filling".into(),
                    ));
                }
                if self.window.len() + added.len() > capacity {
                    return Err(JobError::ModeViolation(format!(
                        "fixed-width window capacity is {capacity} splits"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rejects split ids already used within this job's lifetime (or
    /// repeated within `added` itself).
    fn check_fresh_ids(&self, added: &[Split<A::Input>]) -> Result<(), JobError> {
        let mut fresh = HashSet::new();
        for split in added {
            if self.used_split_ids.contains(&split.id().0) || !fresh.insert(split.id().0) {
                return Err(JobError::DuplicateSplit(split.id().0));
            }
        }
        Ok(())
    }

    /// Window discipline shared by both interior-splice entry points:
    /// fixed-width (rotating) windows are positional bucket grids with no
    /// notion of an interior split range, and append-only (coalescing)
    /// jobs never evict.
    fn check_splice_mode(&self, evicting: bool) -> Result<(), JobError> {
        let mode = self.config.mode;
        if mode.is_fixed_width() {
            return Err(JobError::ModeViolation(
                "fixed-width (rotating) windows are positional: interior splices \
                 are not defined; use whole-bucket advances"
                    .into(),
            ));
        }
        if evicting && mode.is_append_only() {
            return Err(JobError::ModeViolation(
                "append-only (coalescing) jobs cannot evict splits".into(),
            ));
        }
        Ok(())
    }

    /// Contraction + reduce for an interior splice: every shard forwards
    /// the splice to its affected keys' aggregators (or rebuilds them) and
    /// reduces the dirty keys, in parallel like [`Self::run_incremental`].
    /// The window must already reflect the splice.
    fn run_splice(
        &mut self,
        at: usize,
        removed: &[SplitEntry<A>],
        added: &[SplitEntry<A>],
    ) -> Result<PhaseOutcome, JobError> {
        let cx = SpliceCx {
            app: &*self.app,
            combiner: &self.combiner,
            config: &self.config,
            window: &self.window,
            at,
            removed,
            added,
            kind: self
                .config
                .mode
                .tree_kind()
                .expect("incremental mode has a tree"),
        };
        let results = self
            .runtime
            .map_mut(&mut self.shards, |p, shard| shard.run_splice(p, &cx));
        self.fold_shard_outcomes(results)
    }

    /// Folds shard outcomes in shard-index order — which keeps all
    /// metering deterministic for any thread count — and applies the
    /// output deltas to the merged read view.
    fn fold_shard_outcomes(
        &mut self,
        results: Vec<Result<ShardOutcome<A>, JobError>>,
    ) -> Result<PhaseOutcome, JobError> {
        let mut outcome = PhaseOutcome::default();
        for result in results {
            let shard_out = result?;
            outcome.keys_reduced += shard_out.keys_reduced;
            outcome.keys_reused += shard_out.keys_reused;
            outcome.reduce_work += shard_out.work.reduce_work;
            outcome.tree_stats.merge_from(&shard_out.tree_stats);
            outcome.per_partition.push(shard_out.work);
            for (key, value) in shard_out.deltas {
                match value {
                    Some(out) => {
                        self.output.insert(key, out);
                    }
                    None => {
                        self.output.remove(&key);
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Executes Map tasks for `splits` on the runtime's worker pool, with
    /// deterministic (input-order) assembly of the pre-partitioned,
    /// map-side-combined outputs.
    fn map_splits(&self, splits: &[Split<A::Input>]) -> Vec<SplitEntry<A>> {
        let app = &*self.app;
        let parts = self.config.partitions;
        self.runtime
            .map(splits, |_, split| map_one_split(app, parts, split))
    }

    /// Vanilla recomputation: every shard discards its incremental state
    /// and re-reduces every key over all per-split values, one runtime
    /// worker per shard.
    fn run_recompute(&mut self) -> PhaseOutcome {
        let app = &*self.app;
        let window = &self.window;
        let results = self.runtime.map_mut(&mut self.shards, |p, shard| {
            shard.run_recompute(p, app, window)
        });

        let mut outcome = PhaseOutcome::default();
        for shard_out in results {
            outcome.keys_reduced += shard_out.keys_reduced;
            outcome.reduce_work += shard_out.work.reduce_work;
            outcome.per_partition.push(shard_out.work);
        }
        // Rebuild the merged read view from the (disjoint) shard outputs.
        self.output.clear();
        for shard in &self.shards {
            for (key, out) in &shard.output {
                self.output.insert(key.clone(), out.clone());
            }
        }
        outcome
    }

    /// Incremental update via contraction trees: every shard slides (or
    /// rotates) its trees, reduces its dirty keys, and runs split-mode
    /// background pre-processing on the shared runtime. Shard outcomes are
    /// folded in shard-index order, so all modeled work metrics are
    /// bitwise-identical for any thread count.
    fn run_incremental(
        &mut self,
        removed: &[SplitEntry<A>],
        added: &[SplitEntry<A>],
        was_full_buckets: bool,
    ) -> Result<PhaseOutcome, JobError> {
        let cx = SlideCx {
            app: &*self.app,
            combiner: &self.combiner,
            config: &self.config,
            window: &self.window,
            removed,
            added,
            was_full_buckets,
            kind: self
                .config
                .mode
                .tree_kind()
                .expect("incremental mode has a tree"),
            split_processing: self.config.mode.split_processing(),
        };
        let results = self
            .runtime
            .map_mut(&mut self.shards, |p, shard| shard.run_incremental(p, &cx));
        self.fold_shard_outcomes(results)
    }

    /// Builds and runs the cluster simulation for this run.
    fn build_sim(
        &self,
        sim: &SimulationConfig,
        stats: &RunStats,
        new_entries: &[SplitEntry<A>],
        outcome: &PhaseOutcome,
    ) -> (slider_cluster::SimReport, Option<slider_cluster::SimReport>) {
        let machines = sim.cluster.len().max(1);
        let mut next_id = 0u64;
        let mut id = || {
            next_id += 1;
            next_id
        };

        // Stage 1: map tasks — all splits for vanilla, new splits otherwise.
        let map_entries: Vec<&SplitEntry<A>> = if self.config.mode == ExecMode::Recompute {
            self.window.iter().collect()
        } else {
            new_entries.iter().collect()
        };
        let maps: Vec<Task> = map_entries
            .iter()
            .map(|e| {
                let machine =
                    usize::try_from(e.id.0 % machines as u64).expect("bounded by machine count");
                Task::map(id(), e.map_work)
                    .prefer(MachineId(machine))
                    .with_input_bytes(e.input_bytes)
            })
            .collect();

        // Stage 2: one contraction+reduce task per partition with its
        // actual metered work and input bytes.
        let reduces: Vec<Task> = outcome
            .per_partition
            .iter()
            .enumerate()
            .map(|(p, pw)| {
                let mut t = Task::reduce(id(), pw.fg_work + pw.reduce_work)
                    .with_input_bytes(pw.shuffle_bytes + pw.memo_read_bytes);
                if self.config.mode != ExecMode::Recompute {
                    // Memoized state lives where this partition reduced
                    // last; the scheduler decides whether to honour that.
                    t = t.prefer(MachineId(p % machines));
                }
                t
            })
            .collect();
        let _ = stats;

        // This run's scripted machine faults (a trivial plan reproduces
        // the fault-free schedule bit for bit).
        let cluster_plan = self
            .config
            .faults
            .as_ref()
            .map(|f| f.cluster_plan_for_run(self.run_index))
            .unwrap_or_else(FaultPlan::none);
        let fg_report = simulate_traced(
            &sim.cluster,
            sim.policy,
            &[maps, reduces],
            &cluster_plan,
            &self.trace,
            "fg",
        );

        // Background pre-processing runs off the critical path, simulated
        // as its own single-stage schedule.
        let bg_total: u64 = outcome.per_partition.iter().map(|pw| pw.bg_work).sum();
        let bg_report = if bg_total > 0 {
            let bg_tasks: Vec<Task> = outcome
                .per_partition
                .iter()
                .enumerate()
                .filter(|(_, pw)| pw.bg_work > 0)
                .map(|(p, pw)| Task::reduce(id(), pw.bg_work).prefer(MachineId(p % machines)))
                .collect();
            Some(simulate_traced(
                &sim.cluster,
                sim.policy,
                &[bg_tasks],
                &FaultPlan::none(),
                &self.trace,
                "bg",
            ))
        } else {
            None
        };
        (fg_report, bg_report)
    }

    /// Replays this run's memoization traffic through the cache model and
    /// returns the stats delta.
    fn play_cache_traffic(&mut self, recovery: &mut RecoveryStats) -> CacheStats {
        // Bounded retries of an `Unavailable` read (self-healing cache
        // only): each retry backs off in simulated time and drains
        // pending repairs, so a re-replicated copy can serve the retry
        // instead of degrading to recomputation. The bound and backoff
        // come from the config's shared `RetryPolicy` (its default is
        // bit-identical to the former hard-coded constants).
        let policy = self.config.retry;
        let cache = self.cache.clone().expect("caller checked");
        let (nodes, repair_on, per_op_seconds) = cache.with(|c| {
            (
                c.config().nodes.max(1),
                c.config().repair,
                c.config().latency.per_op_seconds,
            )
        });
        let before = cache.stats();
        for p in 0..self.config.partitions {
            let node = NodeId(p % nodes);
            let object = self.object_id(p);
            // The contraction phase reads the partition's memoized state
            // from the previous run (if one was ever written), then writes
            // the updated state back. A read that fails over every replica
            // and still misses means the state was recomputed in the
            // foreground instead (recompute-on-miss): meter it as
            // recovery, never an error.
            if self.cached_objects[p] {
                let mut outcome = cache.with(|c| c.read(object, node));
                let mut retries = 0u32;
                while matches!(outcome, Err(CacheError::Unavailable(_)))
                    && repair_on
                    && retries < policy.max_retries
                {
                    retries += 1;
                    recovery.read_retries += 1;
                    let backoff = per_op_seconds * policy.backoff_multiplier(retries);
                    recovery.backoff_seconds += backoff;
                    // Backoff leaves carry the exact f64 operand added to
                    // `RecoveryStats::backoff_seconds`; refolding them in
                    // emission order reproduces the accumulator bit-exactly.
                    self.trace.with(|t| {
                        let tr = t.track("recovery");
                        let leaf = t.leaf_seconds(
                            tr,
                            SpanKind::Recovery,
                            format!("backoff partition {p}"),
                            backoff,
                        );
                        t.arg(leaf, "retry", u64::from(retries));
                    });
                    outcome = cache.with(|c| {
                        c.drain_repairs();
                        c.read(object, node)
                    });
                }
                match outcome {
                    Ok(_) => {}
                    Err(CacheError::NotFound(_)) => {
                        recovery.cache_not_found += 1;
                        recovery.cache_misses_recovered += 1;
                    }
                    Err(_) => {
                        recovery.cache_unavailable += 1;
                        recovery.cache_misses_recovered += 1;
                    }
                }
            }
            let footprint = self.shards[p].memo_footprint;
            if footprint > 0 {
                cache.with(|c| c.put(object, footprint, node, self.run_index));
            }
            self.cached_objects[p] = footprint > 0;
        }
        // Standalone jobs sweep the whole cache as before; namespaced jobs
        // sweep only their own objects — each tenant advances through
        // epochs at its own pace, so a global sweep at this job's epoch
        // would reap siblings' still-live state.
        if self.cache_ns == 0 {
            cache.with(|c| c.collect_garbage(self.run_index));
        } else {
            let ns = self.cache_ns;
            let run = self.run_index;
            cache.with(|c| c.collect_garbage_scoped(ns, run));
        }
        let after = cache.stats();
        CacheStats {
            memory_hits: after.memory_hits - before.memory_hits,
            disk_reads: after.disk_reads - before.disk_reads,
            not_found_reads: after.not_found_reads - before.not_found_reads,
            unavailable_reads: after.unavailable_reads - before.unavailable_reads,
            read_seconds: after.read_seconds - before.read_seconds,
            bytes_read: after.bytes_read - before.bytes_read,
            collected: after.collected - before.collected,
            evictions: after.evictions - before.evictions,
        }
    }

    /// End-of-run cache maintenance, the paper's split-processing idea
    /// applied to the storage layer: a scrub pass at the configured
    /// cadence, then a drain of the repair queue — all background work
    /// metered in [`slider_dcache::RepairStats`], never in the foreground
    /// read stats.
    fn run_cache_maintenance(&mut self) {
        let cache = self.cache.as_ref().expect("caller checked");
        let run = self.run_index;
        cache.with(|c| {
            let interval = c.config().scrub_interval;
            if interval > 0 && run.is_multiple_of(interval) {
                c.scrub();
            }
            c.drain_repairs();
        });
    }
}

impl<A: MapReduceApp> PartitionShard<A> {
    /// Recomputes this shard from scratch over the whole window: incremental
    /// state is discarded and every key re-reduces over all its per-split
    /// values.
    fn run_recompute(
        &mut self,
        p: usize,
        app: &A,
        window: &VecDeque<SplitEntry<A>>,
    ) -> ShardOutcome<A> {
        self.trees.clear();
        self.memo_footprint = 0;
        self.output.clear();
        // Gather all values per key, window-ordered.
        let mut per_key: BTreeMap<A::Key, Vec<A::Value>> = BTreeMap::new();
        for entry in window {
            for (k, v) in &entry.by_partition[p] {
                per_key.entry(k.clone()).or_default().push(v.clone());
            }
        }
        let mut outcome = ShardOutcome::default();
        for (key, values) in per_key {
            let refs: Vec<&A::Value> = values.iter().collect();
            outcome.work.reduce_work += app.reduce_cost(&key, &refs);
            outcome.keys_reduced += 1;
            let out = app.reduce(&key, &refs);
            self.output.insert(key, out);
        }
        outcome.work.shuffle_bytes = window.iter().map(|e| e.out_bytes[p]).sum();
        outcome
    }

    /// One shard's incremental run: contraction (slide or rotate), dirty-key
    /// reduce into the shard's output slice, and split-mode background
    /// pre-processing.
    fn run_incremental(
        &mut self,
        p: usize,
        cx: &SlideCx<'_, A>,
    ) -> Result<ShardOutcome<A>, JobError> {
        let live_before = self.trees.len();
        let mut outcome = ShardOutcome::default();
        let mut tree_stats = UpdateStats::default();
        let dirty = if cx.kind == TreeKind::Rotating {
            self.rotate(p, cx, &mut tree_stats)?
        } else {
            self.slide(p, cx, &mut tree_stats)?
        };
        let reduce_work = self.reduce_dirty(cx.app, &dirty, &mut outcome);

        // Split mode: background pre-processing for the next run.
        if cx.split_processing {
            self.preprocess(p, cx, &dirty, &mut tree_stats);
        }

        outcome.keys_reused = live_before.saturating_sub(dirty.len());
        outcome.work.fg_work = tree_stats.foreground.work;
        outcome.work.bg_work = tree_stats.background.work;
        outcome.work.reduce_work = reduce_work;
        outcome.work.memo_read_bytes = tree_stats.bytes_read;
        outcome.work.shuffle_bytes = cx.added.iter().map(|e| e.out_bytes[p]).sum();
        outcome.tree_stats = tree_stats;
        Ok(outcome)
    }

    /// Reduces the dirty keys into this shard's output slice, recording
    /// deltas; keys whose window emptied are dropped. Every other output
    /// is reused untouched. Returns the metered reduce work.
    fn reduce_dirty(&mut self, app: &A, dirty: &[A::Key], outcome: &mut ShardOutcome<A>) -> u64 {
        let mut reduce_work = 0u64;
        for key in dirty {
            let Some(tree) = self.trees.get_mut(key) else {
                continue;
            };
            if tree.is_empty() {
                self.trees.remove(key);
                self.output.remove(key);
                outcome.deltas.push((key.clone(), None));
                continue;
            }
            let parts = tree.reduce_parts();
            let refs: Vec<&A::Value> = parts.iter().map(|a| a.as_ref()).collect();
            reduce_work += app.reduce_cost(key, &refs);
            outcome.keys_reduced += 1;
            let out = app.reduce(key, &refs);
            self.output.insert(key.clone(), out.clone());
            outcome.deltas.push((key.clone(), Some(out)));
        }
        reduce_work
    }

    /// One shard's interior bulk splice: per-key splices (or rebuilds)
    /// followed by a dirty-key reduce. Splices run entirely in the
    /// foreground — split-mode background pre-processing only applies to
    /// the bucket-cadenced slide path.
    fn run_splice(&mut self, p: usize, cx: &SpliceCx<'_, A>) -> Result<ShardOutcome<A>, JobError> {
        let live_before = self.trees.len();
        let mut outcome = ShardOutcome::default();
        let mut tree_stats = UpdateStats::default();
        let dirty = self.splice(p, cx, &mut tree_stats)?;
        let reduce_work = self.reduce_dirty(cx.app, &dirty, &mut outcome);

        outcome.keys_reused = live_before.saturating_sub(dirty.len());
        outcome.work.fg_work = tree_stats.foreground.work;
        outcome.work.bg_work = tree_stats.background.work;
        outcome.work.reduce_work = reduce_work;
        outcome.work.memo_read_bytes = tree_stats.bytes_read;
        outcome.work.shuffle_bytes = cx.added.iter().map(|e| e.out_bytes[p]).sum();
        outcome.tree_stats = tree_stats;
        Ok(outcome)
    }

    /// Applies an interior splice to every affected key of this shard.
    ///
    /// A key's leaf-space splice position is its occurrence count in the
    /// unchanged window prefix `window[..at]` — identical before and after
    /// the splice, for insertions and evictions alike. Keys whose
    /// aggregator has no native splice ([`TreeError::SpliceUnsupported`])
    /// are rebuilt from the post-splice window; the rebuild work flows
    /// through the same [`TreeCx`], so it lands in this run's foreground
    /// breakdown rather than vanishing from the work model.
    fn splice(
        &mut self,
        p: usize,
        cx: &SpliceCx<'_, A>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<A::Key>, JobError> {
        // Per-key inserted values (window-ordered) and evicted occurrence
        // counts. Engine callers pass one or the other, never both.
        let mut insertions: BTreeMap<A::Key, Vec<Arc<A::Value>>> = BTreeMap::new();
        for entry in cx.added {
            for (key, value) in &entry.by_partition[p] {
                insertions
                    .entry(key.clone())
                    .or_default()
                    .push(Arc::new(value.clone()));
            }
        }
        let mut evictions: BTreeMap<A::Key, usize> = BTreeMap::new();
        for entry in cx.removed {
            for key in entry.by_partition[p].keys() {
                *evictions.entry(key.clone()).or_default() += 1;
            }
        }

        // Leaf-space offset of the splice point for every touched key.
        let mut prefix: HashMap<A::Key, usize> = insertions
            .keys()
            .chain(evictions.keys())
            .map(|k| (k.clone(), 0))
            .collect();
        for entry in cx.window.iter().take(cx.at) {
            for key in entry.by_partition[p].keys() {
                if let Some(n) = prefix.get_mut(key) {
                    *n += 1;
                }
            }
        }

        let mut dirty: Vec<A::Key> = prefix.keys().cloned().collect();
        dirty.sort_unstable();

        for key in &dirty {
            let leaf_at = prefix.get(key).copied().unwrap_or(0);
            let values = insertions.get(key).cloned().unwrap_or_default();
            let evict = evictions.get(key).copied().unwrap_or(0);
            let tree = self
                .trees
                .entry(key.clone())
                .or_insert_with(|| Self::fresh_tree(cx.kind, cx.config.mode));
            let mut tree_cx = TreeCx::new(cx.combiner, key, stats);
            if tree.is_empty() && evict == 0 {
                // Brand-new key: the splice degenerates to an append into
                // an empty window, which the regular slide path builds.
                let adds: Vec<Option<Arc<A::Value>>> = values.into_iter().map(Some).collect();
                tree.advance(&mut tree_cx, 0, adds)?;
                continue;
            }
            let spliced = if evict > 0 {
                tree.evict_range(&mut tree_cx, leaf_at, evict)
            } else {
                tree.insert_at(&mut tree_cx, leaf_at, values)
            };
            match spliced {
                Ok(()) => {}
                Err(TreeError::SpliceUnsupported { .. }) => {
                    // Evicted leaves leave the window for good; the rebuild
                    // below re-notes every surviving leaf it re-adds.
                    if evict > 0 {
                        tree_cx.note_removed(evict as u64);
                    }
                    let leaves: Vec<Option<Arc<A::Value>>> = cx
                        .window
                        .iter()
                        .filter_map(|e| e.by_partition[p].get(key))
                        .map(|v| Some(Arc::new(v.clone())))
                        .collect();
                    tree.rebuild(&mut tree_cx, leaves);
                }
                Err(e) => return Err(e.into()),
            }
        }

        // The strawman visits every memoized sub-computation on any
        // change, splices included (paper §2/§9): clean keys re-pair
        // entirely from the memo cache.
        if cx.kind == TreeKind::Strawman {
            let dirty_set: HashSet<&A::Key> = dirty.iter().collect();
            let clean: Vec<A::Key> = self
                .trees
                .keys()
                .filter(|k| !dirty_set.contains(k))
                .cloned()
                .collect();
            for key in clean {
                let tree = self.trees.get_mut(&key).expect("live key");
                let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                tree.advance(&mut tree_cx, 0, Vec::new())?;
            }
        }
        Ok(dirty)
    }

    /// Variable-width / append-only / strawman slide of this shard.
    fn slide(
        &mut self,
        p: usize,
        cx: &SlideCx<'_, A>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<A::Key>, JobError> {
        let mut removals: HashMap<A::Key, usize> = HashMap::new();
        for entry in cx.removed {
            for key in entry.by_partition[p].keys() {
                *removals.entry(key.clone()).or_default() += 1;
            }
        }
        let mut additions: BTreeMap<A::Key, Vec<Arc<A::Value>>> = BTreeMap::new();
        for entry in cx.added {
            for (key, value) in &entry.by_partition[p] {
                additions
                    .entry(key.clone())
                    .or_default()
                    .push(Arc::new(value.clone()));
            }
        }

        let mut dirty: Vec<A::Key> = removals.keys().cloned().collect();
        for key in additions.keys() {
            if !removals.contains_key(key) {
                dirty.push(key.clone());
            }
        }
        dirty.sort_unstable();

        for key in &dirty {
            let remove = removals.get(key).copied().unwrap_or(0);
            let adds: Vec<Option<Arc<A::Value>>> = additions
                .remove(key)
                .map(|vs| vs.into_iter().map(Some).collect())
                .unwrap_or_default();
            let tree = self
                .trees
                .entry(key.clone())
                .or_insert_with(|| Self::fresh_tree(cx.kind, cx.config.mode));
            let mut tree_cx = TreeCx::new(cx.combiner, key, stats);
            tree.advance(&mut tree_cx, remove, adds)?;
        }

        // The strawman's change propagation has no window-aware structure:
        // it visits *every* memoized sub-computation to decide whether it
        // can be reused (paper §2/§9 — "they require visiting all tasks in
        // a computation even if the task is not affected by the modified
        // data"). Clean keys re-pair entirely from the memo cache — no
        // fresh merges, but the visit reads every memoized node.
        if cx.kind == TreeKind::Strawman {
            let dirty_set: HashSet<&A::Key> = dirty.iter().collect();
            let clean: Vec<A::Key> = self
                .trees
                .keys()
                .filter(|k| !dirty_set.contains(k))
                .cloned()
                .collect();
            for key in clean {
                let tree = self.trees.get_mut(&key).expect("live key");
                let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                tree.advance(&mut tree_cx, 0, Vec::new())?;
            }
        }
        Ok(dirty)
    }

    /// Builds a fresh per-key tree honouring the split-processing flag.
    fn fresh_tree(kind: TreeKind, mode: ExecMode) -> Box<dyn WindowAggregator<A::Key, A::Value>> {
        if kind == TreeKind::Coalescing && mode.split_processing() {
            Box::new(slider_core::CoalescingTree::with_split_processing())
        } else {
            build_tree::<A::Key, A::Value>(kind, 0)
        }
    }

    /// Fixed-width bucket rotation of this shard.
    fn rotate(
        &mut self,
        p: usize,
        cx: &SlideCx<'_, A>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<A::Key>, JobError> {
        let w = cx.config.bucket_width;
        let n = cx.config.window_buckets;
        let was_full = cx.was_full_buckets;
        let out_buckets: Vec<&[SplitEntry<A>]> = cx.removed.chunks(w).collect();
        let in_buckets: Vec<&[SplitEntry<A>]> = cx.added.chunks(w).collect();
        let steps = in_buckets.len().max(out_buckets.len());
        // Buckets present before this advance (the window deque was already
        // updated by the caller).
        let mut buckets_now = (cx.window.len() + cx.removed.len() - cx.added.len()) / w;

        let mut dirty: HashSet<A::Key> = HashSet::new();
        for step in 0..steps {
            let out_keys: HashSet<&A::Key> = if was_full {
                out_buckets
                    .get(step)
                    .map(|b| b.iter().flat_map(|e| e.by_partition[p].keys()).collect())
                    .unwrap_or_default()
            } else {
                HashSet::new()
            };
            // Per-key incoming values in this bucket, window-ordered.
            let mut incoming: BTreeMap<A::Key, Vec<Arc<A::Value>>> = BTreeMap::new();
            if let Some(bucket) = in_buckets.get(step) {
                for entry in *bucket {
                    for (key, value) in &entry.by_partition[p] {
                        incoming
                            .entry(key.clone())
                            .or_default()
                            .push(Arc::new(value.clone()));
                    }
                }
            }
            if !was_full {
                buckets_now += 1;
            }

            let live_keys: Vec<A::Key> = self.trees.keys().cloned().collect();
            for key in live_keys {
                let leaf = match incoming.remove(&key) {
                    Some(values) => {
                        let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                        tree_cx.fold(Phase::Foreground, values)
                    }
                    None => None,
                };
                let outgoing = out_keys.contains(&key);
                let tree = self.trees.get_mut(&key).expect("live key has a tree");
                let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                if outgoing || leaf.is_some() {
                    dirty.insert(key.clone());
                    tree.advance(&mut tree_cx, usize::from(was_full), vec![leaf])?;
                } else {
                    tree.advance_absent(&mut tree_cx)?;
                }
            }
            // Brand-new keys in this bucket.
            for (key, values) in incoming {
                dirty.insert(key.clone());
                let mut tree = build_tree::<A::Key, A::Value>(TreeKind::Rotating, n);
                let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                let leaf = tree_cx.fold(Phase::Foreground, values);
                let occupied = if was_full { n } else { buckets_now };
                let mut leaves: Vec<Option<Arc<A::Value>>> = vec![None; occupied - 1];
                leaves.push(leaf);
                tree.rebuild(&mut tree_cx, leaves);
                self.trees.insert(key, tree);
            }
        }
        let mut dirty: Vec<A::Key> = dirty.into_iter().collect();
        dirty.sort_unstable();
        Ok(dirty)
    }

    /// Background pre-processing after the foreground result was produced.
    fn preprocess(
        &mut self,
        p: usize,
        cx: &SlideCx<'_, A>,
        dirty: &[A::Key],
        stats: &mut UpdateStats,
    ) {
        match cx.kind {
            TreeKind::Coalescing => {
                // Coalesce the pending delta of every key touched this run.
                for key in dirty {
                    if let Some(tree) = self.trees.get_mut(key) {
                        let mut tree_cx = TreeCx::new(cx.combiner, key, stats);
                        tree.preprocess(&mut tree_cx);
                    }
                }
            }
            TreeKind::Rotating => {
                // Prepare off-path aggregates for keys in the bucket that
                // rotates out next (the oldest in the new window), and
                // finish deferred insertions for keys touched this run.
                let w = cx.config.bucket_width;
                let mut keys: HashSet<A::Key> = dirty.iter().cloned().collect();
                for entry in cx.window.iter().take(w) {
                    keys.extend(entry.by_partition[p].keys().cloned());
                }
                let mut keys: Vec<A::Key> = keys.into_iter().collect();
                keys.sort_unstable();
                for key in keys {
                    if let Some(tree) = self.trees.get_mut(&key) {
                        let mut tree_cx = TreeCx::new(cx.combiner, &key, stats);
                        tree.preprocess(&mut tree_cx);
                    }
                }
            }
            _ => {}
        }
    }

    /// Recomputes the memoization footprint from the live trees.
    fn refresh_footprint(&mut self, combiner: &AppCombiner<A>) {
        self.memo_footprint = self
            .trees
            .iter()
            .map(|(key, tree)| tree.memo_bytes(combiner, key))
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::make_splits;

    /// Word count over whitespace-separated tokens.
    struct WordCount;
    impl MapReduceApp for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for word in line.split_whitespace() {
                emit(word.to_string(), 1);
            }
        }
        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }

    fn lines(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    fn reference_counts(window: &[&str]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for line in window {
            for word in line.split_whitespace() {
                *out.entry(word.to_string()).or_insert(0) += 1;
            }
        }
        out
    }

    fn all_modes() -> Vec<ExecMode> {
        vec![
            ExecMode::Recompute,
            ExecMode::Strawman,
            ExecMode::slider_folding(),
            ExecMode::slider_randomized(),
            ExecMode::slider_rotating(false),
            ExecMode::slider_rotating(true),
            ExecMode::slider_two_stack(),
            ExecMode::slider_daba(),
            ExecMode::slider_daba_lite(),
        ]
    }

    #[test]
    fn every_mode_matches_reference_over_slides() {
        // 8 splits of 1 line each; fixed-width geometry 8 buckets × 1.
        let corpus = [
            "a b c", "b c d", "c d e", "a a b", "e f", "f g a", "b b", "g h a", "h i", "a c e",
            "b d f", "c c c",
        ];
        for mode in all_modes() {
            let config = JobConfig::new(mode).with_partitions(3).with_buckets(8, 1);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            job.initial_run(make_splits(0, lines(&corpus[0..8]), 1))
                .unwrap();
            assert_eq!(
                job.output(),
                &reference_counts(&corpus[0..8]),
                "{mode}: initial run mismatch"
            );

            // Slide twice by 2 splits.
            job.advance(2, make_splits(100, lines(&corpus[8..10]), 1))
                .unwrap();
            assert_eq!(
                job.output(),
                &reference_counts(&corpus[2..10]),
                "{mode}: slide 1 mismatch"
            );
            job.advance(2, make_splits(200, lines(&corpus[10..12]), 1))
                .unwrap();
            assert_eq!(
                job.output(),
                &reference_counts(&corpus[4..12]),
                "{mode}: slide 2 mismatch"
            );
        }
    }

    #[test]
    fn append_only_modes_match_reference() {
        let corpus = ["a b", "b c", "c d", "d e a", "e f b"];
        for mode in [
            ExecMode::Recompute,
            ExecMode::slider_coalescing(false),
            ExecMode::slider_coalescing(true),
        ] {
            let config = JobConfig::new(mode).with_partitions(2);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            job.initial_run(make_splits(0, lines(&corpus[0..2]), 1))
                .unwrap();
            job.advance(0, make_splits(10, lines(&corpus[2..4]), 1))
                .unwrap();
            job.advance(0, make_splits(20, lines(&corpus[4..5]), 1))
                .unwrap();
            assert_eq!(job.output(), &reference_counts(&corpus), "{mode}");
        }
    }

    /// Every mode with a variable-width window: interior splices are
    /// defined for all of these (fixed-width rotating geometry is not).
    fn variable_width_modes() -> Vec<ExecMode> {
        vec![
            ExecMode::Recompute,
            ExecMode::Strawman,
            ExecMode::slider_folding(),
            ExecMode::slider_randomized(),
            ExecMode::slider_two_stack(),
            ExecMode::slider_daba(),
            ExecMode::slider_daba_lite(),
        ]
    }

    #[test]
    fn interior_insert_matches_reference_for_every_variable_width_mode() {
        let corpus = ["a b c", "b c d", "c d e", "a a b", "e f", "f g a"];
        let late = ["z a", "b z"];
        let append_only = [
            ExecMode::slider_coalescing(false),
            ExecMode::slider_coalescing(true),
        ];
        for mode in variable_width_modes().into_iter().chain(append_only) {
            let config = JobConfig::new(mode).with_partitions(3);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            job.initial_run(make_splits(0, lines(&corpus), 1)).unwrap();

            // Two late splits land between window positions 1 and 2.
            let stats = job
                .insert_splits_at(2, make_splits(100, lines(&late), 1))
                .unwrap();
            let logical = [
                "a b c", "b c d", "z a", "b z", "c d e", "a a b", "e f", "f g a",
            ];
            assert_eq!(job.output(), &reference_counts(&logical), "{mode}");
            assert_eq!(job.window_splits(), 8, "{mode}");
            assert_eq!(stats.run, 1, "{mode}: a splice is a full run");
            assert_eq!(
                stats.map_tasks,
                if mode == ExecMode::Recompute { 8 } else { 2 },
                "{mode}: only the late splits map incrementally"
            );

            // Ordinary slides keep working on the spliced window.
            if !mode.is_append_only() {
                job.advance(2, make_splits(200, lines(&["q q"]), 1))
                    .unwrap();
                let after = ["z a", "b z", "c d e", "a a b", "e f", "f g a", "q q"];
                assert_eq!(
                    job.output(),
                    &reference_counts(&after),
                    "{mode}: slide after splice"
                );
            }
        }
    }

    #[test]
    fn interior_evict_matches_reference_for_every_variable_width_mode() {
        let corpus = ["a b c", "b c d", "c d e", "a a b", "e f", "f g a"];
        for mode in variable_width_modes() {
            let config = JobConfig::new(mode).with_partitions(3);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            job.initial_run(make_splits(0, lines(&corpus), 1)).unwrap();

            // Bulk-evict window positions [2, 5) from the interior. Every
            // occurrence of "e" goes with them, so the key must vanish.
            job.evict_splits_range(2, 3).unwrap();
            let logical = ["a b c", "b c d", "f g a"];
            assert_eq!(job.output(), &reference_counts(&logical), "{mode}");
            assert_eq!(job.window_splits(), 3, "{mode}");
            assert_eq!(job.output().get("e"), None, "{mode}: emptied key dropped");

            // Ordinary slides keep working on the spliced window.
            job.advance(1, make_splits(200, lines(&["q q"]), 1))
                .unwrap();
            let after = ["b c d", "f g a", "q q"];
            assert_eq!(
                job.output(),
                &reference_counts(&after),
                "{mode}: slide after evict"
            );
        }
    }

    #[test]
    fn splice_discipline_and_bounds_are_enforced() {
        // Fixed-width windows reject interior splices outright.
        let config = JobConfig::new(ExecMode::slider_rotating(false))
            .with_partitions(2)
            .with_buckets(4, 1);
        let mut job = WindowedJob::new(WordCount, config).unwrap();
        job.initial_run(make_splits(0, lines(&["a", "b", "c", "d"]), 1))
            .unwrap();
        assert!(matches!(
            job.insert_splits_at(1, make_splits(100, lines(&["z"]), 1)),
            Err(JobError::ModeViolation(_))
        ));
        assert!(matches!(
            job.evict_splits_range(1, 1),
            Err(JobError::ModeViolation(_))
        ));

        // Append-only windows admit late interior inserts (via the rebuild
        // fallback — coalescing trees keep no leaves) but never evict.
        let config = JobConfig::new(ExecMode::slider_coalescing(false)).with_partitions(2);
        let mut job = WindowedJob::new(WordCount, config).unwrap();
        job.initial_run(make_splits(0, lines(&["a", "b"]), 1))
            .unwrap();
        job.insert_splits_at(1, make_splits(100, lines(&["z"]), 1))
            .unwrap();
        assert_eq!(job.output().get("z"), Some(&1));
        assert!(matches!(
            job.evict_splits_range(0, 1),
            Err(JobError::ModeViolation(_))
        ));

        // Out-of-range splices are typed errors that leave the job
        // untouched; so are reused split ids.
        let config = JobConfig::new(ExecMode::slider_folding()).with_partitions(2);
        let mut job = WindowedJob::new(WordCount, config).unwrap();
        job.initial_run(make_splits(0, lines(&["a", "b"]), 1))
            .unwrap();
        let before = job.output().clone();
        assert!(matches!(
            job.insert_splits_at(3, make_splits(100, lines(&["z"]), 1)),
            Err(JobError::SpliceOutOfRange {
                at: 3,
                count: 1,
                window: 2
            })
        ));
        assert!(matches!(
            job.evict_splits_range(1, 2),
            Err(JobError::SpliceOutOfRange {
                at: 1,
                count: 2,
                window: 2
            })
        ));
        assert!(matches!(
            job.evict_splits_range(usize::MAX, 2),
            Err(JobError::SpliceOutOfRange { .. })
        ));
        assert!(matches!(
            job.insert_splits_at(0, make_splits(0, lines(&["z"]), 1)),
            Err(JobError::DuplicateSplit(0))
        ));
        assert_eq!(job.output(), &before);
        assert_eq!(job.window_splits(), 2);
    }

    #[test]
    fn native_splices_beat_rebuild_fallback_on_contraction_work() {
        // The same interior insert through a folding tree (native splice)
        // and a two-stack aggregator (rebuild fallback): outputs agree,
        // but the fallback pays for re-merging the whole window.
        let corpus: Vec<String> = (0..64).map(|i| format!("k{} every", i % 5)).collect();
        let run = |mode: ExecMode| {
            let mut job =
                WindowedJob::new(WordCount, JobConfig::new(mode).with_partitions(1)).unwrap();
            job.initial_run(make_splits(0, corpus.clone(), 1)).unwrap();
            let stats = job
                .insert_splits_at(7, make_splits(100, lines(&["k1 every"]), 1))
                .unwrap();
            (job, stats)
        };
        let (native_job, native) = run(ExecMode::slider_folding());
        let (fallback_job, fallback) = run(ExecMode::slider_two_stack());
        assert_eq!(native_job.output(), fallback_job.output());
        assert!(
            native.work.contraction_fg.merges < fallback.work.contraction_fg.merges,
            "native splice merges {} should undercut rebuild fallback {}",
            native.work.contraction_fg.merges,
            fallback.work.contraction_fg.merges
        );
    }

    #[test]
    fn incremental_modes_do_less_map_work() {
        let corpus: Vec<String> = (0..32).map(|i| format!("w{} common", i % 7)).collect();
        let mut vanilla = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::Recompute).with_partitions(2),
        )
        .unwrap();
        let mut slider = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
        )
        .unwrap();
        vanilla
            .initial_run(make_splits(0, corpus.clone(), 2))
            .unwrap();
        slider
            .initial_run(make_splits(0, corpus.clone(), 2))
            .unwrap();

        let extra: Vec<String> = (0..4).map(|i| format!("x{i} common")).collect();
        let v = vanilla
            .advance(2, make_splits(100, extra.clone(), 2))
            .unwrap();
        let s = slider.advance(2, make_splits(100, extra, 2)).unwrap();
        assert_eq!(vanilla.output(), slider.output());
        assert!(
            s.work.map < v.work.map,
            "slider map work {} should be below vanilla {}",
            s.work.map,
            v.work.map
        );
        assert!(s.map_reused > 0);
        assert!(
            s.work.foreground_total() < v.work.foreground_total(),
            "slider total {} vs vanilla {}",
            s.work.foreground_total(),
            v.work.foreground_total()
        );
    }

    #[test]
    fn split_processing_shifts_work_to_background() {
        let corpus: Vec<String> = (0..16).map(|i| format!("k{} shared", i % 3)).collect();
        let make_job = |split| {
            let config = JobConfig::new(ExecMode::slider_rotating(split))
                .with_partitions(2)
                .with_buckets(8, 1);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            job.initial_run(make_splits(0, corpus.clone(), 2)).unwrap();
            job
        };
        let mut plain = make_job(false);
        let mut split = make_job(true);

        let mut fg_plain = 0u64;
        let mut fg_split = 0u64;
        let mut bg_split = 0u64;
        for round in 0..4u64 {
            let adds: Vec<String> = (0..2).map(|i| format!("k{} fresh{round}", i)).collect();
            let p = plain
                .advance(1, make_splits(1000 + round * 10, adds.clone(), 2))
                .unwrap();
            let s = split
                .advance(1, make_splits(2000 + round * 10, adds, 2))
                .unwrap();
            assert_eq!(plain.output(), split.output(), "round {round}");
            fg_plain += p.work.contraction_fg.work;
            fg_split += s.work.contraction_fg.work;
            bg_split += s.work.contraction_bg.work;
            assert_eq!(p.work.contraction_bg.work, 0);
        }
        assert!(bg_split > 0, "split mode must offload to background");
        assert!(
            fg_split < fg_plain,
            "split foreground {fg_split} should undercut plain {fg_plain}"
        );
    }

    #[test]
    fn window_discipline_is_enforced() {
        // Append-only cannot remove.
        let mut job = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::slider_coalescing(false)),
        )
        .unwrap();
        job.initial_run(make_splits(0, lines(&["a"]), 1)).unwrap();
        assert!(matches!(
            job.advance(1, vec![]),
            Err(JobError::ModeViolation(_))
        ));

        // Fixed-width must slide whole buckets.
        let mut job = WindowedJob::new(
            WordCount,
            JobConfig::new(ExecMode::slider_rotating(false)).with_buckets(4, 2),
        )
        .unwrap();
        job.initial_run(make_splits(
            0,
            lines(&["a", "b", "c", "d", "e", "f", "g", "h"]),
            1,
        ))
        .unwrap();
        assert!(matches!(
            job.advance(1, make_splits(100, lines(&["x"]), 1)),
            Err(JobError::ModeViolation(_))
        ));

        // Duplicate split ids are rejected.
        let mut job =
            WindowedJob::new(WordCount, JobConfig::new(ExecMode::slider_folding())).unwrap();
        job.initial_run(make_splits(0, lines(&["a"]), 1)).unwrap();
        assert_eq!(
            job.advance(0, make_splits(0, lines(&["b"]), 1))
                .unwrap_err(),
            JobError::DuplicateSplit(0)
        );

        // Removing beyond the window is rejected.
        assert!(matches!(
            job.advance(5, vec![]),
            Err(JobError::RemoveExceedsWindow {
                requested: 5,
                window: 1
            })
        ));
    }

    #[test]
    fn simulation_produces_time_metrics() {
        let config = JobConfig::new(ExecMode::slider_folding())
            .with_partitions(4)
            .with_simulation(SimulationConfig::paper_defaults());
        let mut job = WindowedJob::new(WordCount, config).unwrap();
        let corpus: Vec<String> = (0..16).map(|i| format!("w{i} c")).collect();
        let stats = job.initial_run(make_splits(0, corpus, 2)).unwrap();
        let sim = stats.sim.as_ref().expect("simulation configured");
        assert!(sim.makespan > 0.0);
        assert_eq!(sim.stages.len(), 2);
        assert!(stats.map_seconds().unwrap() > 0.0);
    }

    #[test]
    fn cache_model_records_traffic_and_failures() {
        let config = JobConfig::new(ExecMode::slider_folding())
            .with_partitions(2)
            .with_cache(slider_dcache::CacheConfig::paper_defaults(4));
        let mut job = WindowedJob::new(WordCount, config).unwrap();
        job.initial_run(make_splits(0, lines(&["a b", "b c"]), 1))
            .unwrap();
        let stats = job.advance(1, make_splits(10, lines(&["c d"]), 1)).unwrap();
        let cache = stats.cache.expect("cache configured");
        assert!(
            cache.memory_hits > 0,
            "memoized state should be read from memory"
        );

        // Crash the node holding partition 0's state: next run reads fall
        // back to disk replicas but still succeed.
        job.fail_cache_node(0);
        let stats = job.advance(1, make_splits(11, lines(&["d e"]), 1)).unwrap();
        let cache = stats.cache.expect("cache configured");
        assert!(cache.disk_reads > 0, "failure must fall back to replicas");
        assert_eq!(cache.failed_reads(), 0);
        assert_eq!(job.output(), &reference_counts(&["c d", "d e"]));
    }

    #[test]
    fn strawman_pays_more_contraction_work_than_folding_on_front_removal() {
        let corpus: Vec<String> = (0..64).map(|_| "k".to_string()).collect();
        let run = |mode: ExecMode| {
            let mut job =
                WindowedJob::new(WordCount, JobConfig::new(mode).with_partitions(1)).unwrap();
            job.initial_run(make_splits(0, corpus.clone(), 1)).unwrap();
            let stats = job
                .advance(1, make_splits(100, vec!["k".to_string()], 1))
                .unwrap();
            stats.work.contraction_fg.merges
        };
        let strawman = run(ExecMode::Strawman);
        let folding = run(ExecMode::slider_folding());
        assert!(
            strawman > 2 * folding.max(1),
            "strawman {strawman} merges vs folding {folding}"
        );
    }

    #[test]
    fn thread_count_changes_neither_outputs_nor_stats() {
        let corpus: Vec<String> = (0..24).map(|i| format!("w{} shared", i % 5)).collect();
        let run = |threads: usize| {
            let config = JobConfig::new(ExecMode::slider_folding())
                .with_partitions(4)
                .with_threads(threads);
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            let s0 = job.initial_run(make_splits(0, corpus.clone(), 2)).unwrap();
            let adds = vec!["x common".to_string(), "y common".to_string()];
            let s1 = job.advance(2, make_splits(100, adds, 2)).unwrap();
            (job.output().clone(), format!("{s0:?} {s1:?}"))
        };
        let (output_seq, stats_seq) = run(1);
        for threads in [2, 4] {
            let (output, stats) = run(threads);
            assert_eq!(output, output_seq, "outputs at {threads} threads");
            assert_eq!(stats, stats_seq, "work metering at {threads} threads");
        }
    }

    #[test]
    fn output_accessors_work() {
        let mut job =
            WindowedJob::new(WordCount, JobConfig::new(ExecMode::slider_folding())).unwrap();
        job.initial_run(make_splits(0, lines(&["hello world"]), 1))
            .unwrap();
        assert_eq!(job.window_splits(), 1);
        assert!(job.memo_footprint_bytes() > 0);
        assert!(format!("{job:?}").contains("WindowedJob"));
        assert_eq!(job.config().partitions, 8);
    }

    #[test]
    fn trivial_fault_plan_is_bit_identical_to_no_plan() {
        let corpus = ["a b c", "b c d", "c d e", "a a b", "e f", "f g a"];
        let base = || {
            JobConfig::new(ExecMode::slider_folding())
                .with_partitions(3)
                .with_simulation(SimulationConfig::paper_defaults())
                .with_cache(slider_dcache::CacheConfig::paper_defaults(4))
        };
        let run = |config: JobConfig| {
            let mut job = WindowedJob::new(WordCount, config).unwrap();
            let s0 = job
                .initial_run(make_splits(0, lines(&corpus[0..4]), 1))
                .unwrap();
            let s1 = job
                .advance(2, make_splits(10, lines(&corpus[4..6]), 1))
                .unwrap();
            (job.output().clone(), format!("{s0:?} {s1:?}"))
        };
        let plain = run(base());
        let trivial = run(base().with_faults(JobFaultPlan::none()));
        assert_eq!(plain.0, trivial.0);
        assert_eq!(plain.1, trivial.1, "an empty plan must not perturb stats");
    }

    #[test]
    fn memo_loss_is_rebuilt_bit_identically_in_every_mode() {
        let corpus = [
            "a b c", "b c d", "c d e", "a a b", "e f", "f g a", "b b", "g h a", "h i", "a c e",
            "b d f", "c c c",
        ];
        let plan = JobFaultPlan::none().lose_memo(1, vec![0, 2]);
        for mode in all_modes() {
            let make = |faults: Option<JobFaultPlan>| {
                let mut config = JobConfig::new(mode).with_partitions(3).with_buckets(8, 1);
                if let Some(f) = faults {
                    config = config.with_faults(f);
                }
                WindowedJob::new(WordCount, config).unwrap()
            };
            let mut faulty = make(Some(plan.clone()));
            let mut twin = make(None);
            faulty
                .initial_run(make_splits(0, lines(&corpus[0..8]), 1))
                .unwrap();
            twin.initial_run(make_splits(0, lines(&corpus[0..8]), 1))
                .unwrap();

            // Run 1: partitions 0 and 2 lose their memoized trees just
            // before the slide and must rebuild, then slide as usual.
            let stats = faulty
                .advance(2, make_splits(100, lines(&corpus[8..10]), 1))
                .unwrap();
            let twin_stats = twin
                .advance(2, make_splits(100, lines(&corpus[8..10]), 1))
                .unwrap();
            assert_eq!(faulty.output(), twin.output(), "{mode}: run 1 outputs");
            if mode.tree_kind().is_some() {
                assert_eq!(stats.recovery.lost_partitions, 2, "{mode}");
                assert!(stats.recovery.rebuild_work > 0, "{mode}: rebuild metered");
            } else {
                assert!(stats.recovery.is_zero(), "{mode}: nothing memoized");
            }
            // Recovery work never leaks into the regular breakdown. (In
            // split mode the rebuilt tree drops its pending background
            // pre-combinations, so background work may legitimately
            // differ; outputs still cannot.)
            if !mode.split_processing() {
                assert_eq!(stats.work, twin_stats.work, "{mode}: run 1 work");
            }

            // Run 2 is fault-free again: recovery stats return to zero and
            // outputs keep matching.
            let stats = faulty
                .advance(2, make_splits(200, lines(&corpus[10..12]), 1))
                .unwrap();
            twin.advance(2, make_splits(200, lines(&corpus[10..12]), 1))
                .unwrap();
            assert!(stats.recovery.is_zero(), "{mode}: run 2 recovery");
            assert_eq!(faulty.output(), twin.output(), "{mode}: run 2 outputs");
            assert_eq!(faulty.output(), &reference_counts(&corpus[4..12]), "{mode}");
        }
    }

    #[test]
    fn fault_plan_validation_catches_bad_targets() {
        let plan = JobFaultPlan::none().crash(0, 99, 1.0);
        let config = JobConfig::new(ExecMode::slider_folding())
            .with_simulation(SimulationConfig::paper_defaults())
            .with_faults(plan);
        let err = WindowedJob::new(WordCount, config).unwrap_err();
        assert!(matches!(err, JobError::BadConfig(ref m) if m.contains("machine 99")));

        let config = JobConfig::new(ExecMode::slider_folding())
            .with_faults(JobFaultPlan::none().slow(0, 0, f64::NAN));
        assert!(WindowedJob::new(WordCount, config).is_err());
    }
}
