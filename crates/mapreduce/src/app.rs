//! The application contract: plain batch MapReduce code, no incremental
//! logic.

use std::hash::Hash;
use std::sync::Arc;

use slider_core::Combiner;

/// A MapReduce application, written exactly as for non-incremental batch
/// processing (the paper's transparency requirement).
///
/// * [`MapReduceApp::map`] turns one input record into key/value pairs.
/// * [`MapReduceApp::combine`] is the associative (ideally commutative)
///   partial aggregation — Hadoop's Combiner. Slider reuses it to build
///   contraction trees, so it must satisfy the usual combiner contract:
///   `reduce(k, combine-tree over values)` must equal
///   `reduce(k, all values)` regardless of grouping order.
/// * [`MapReduceApp::reduce`] produces the final per-key output from one or
///   more partial aggregates (more than one only under split processing).
///
/// The `*_cost` and `*_bytes` hooks feed the work/space model (DESIGN.md
/// §5); defaults model a unit-cost, fixed-size application.
pub trait MapReduceApp: Send + Sync + 'static {
    /// One input record.
    type Input: Clone + Send + Sync;
    /// Shuffle key.
    type Key: Clone + Ord + Hash + Send + Sync;
    /// Partial aggregate exchanged between combiners.
    type Value: Clone + Send + Sync;
    /// Final per-key output.
    type Output: Clone + Send + Sync + PartialEq;

    /// Emits key/value pairs for `input`.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// Merges two partial aggregates. Must be associative.
    fn combine(&self, key: &Self::Key, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Whether [`MapReduceApp::combine`] is commutative (required by
    /// fixed-width windows). Defaults to `true`.
    fn is_commutative(&self) -> bool {
        true
    }

    /// Produces the final output for `key` from partial aggregates.
    fn reduce(&self, key: &Self::Key, parts: &[&Self::Value]) -> Self::Output;

    /// Modeled cost of mapping one record, in work units.
    fn map_cost(&self, _input: &Self::Input) -> u64 {
        1
    }

    /// Modeled cost of one combine invocation.
    fn combine_cost(&self, _key: &Self::Key, _a: &Self::Value, _b: &Self::Value) -> u64 {
        1
    }

    /// Modeled cost of one reduce invocation.
    fn reduce_cost(&self, _key: &Self::Key, parts: &[&Self::Value]) -> u64 {
        parts.len() as u64
    }

    /// Modeled size of a partial aggregate in bytes (memoization and
    /// shuffle accounting).
    fn value_bytes(&self, _key: &Self::Key, _v: &Self::Value) -> u64 {
        16
    }

    /// Modeled size of one input record in bytes.
    fn record_bytes(&self, _input: &Self::Input) -> u64 {
        100
    }
}

/// Adapts a [`MapReduceApp`] into the [`Combiner`] interface the
/// contraction trees consume.
#[derive(Debug)]
pub struct AppCombiner<A> {
    app: Arc<A>,
}

impl<A> AppCombiner<A> {
    /// Wraps `app`.
    pub fn new(app: Arc<A>) -> Self {
        AppCombiner { app }
    }
}

impl<A> Clone for AppCombiner<A> {
    fn clone(&self) -> Self {
        AppCombiner {
            app: Arc::clone(&self.app),
        }
    }
}

impl<A: MapReduceApp> Combiner<A::Key, A::Value> for AppCombiner<A> {
    fn combine(&self, key: &A::Key, a: &A::Value, b: &A::Value) -> A::Value {
        self.app.combine(key, a, b)
    }

    fn is_commutative(&self) -> bool {
        self.app.is_commutative()
    }

    fn cost(&self, key: &A::Key, a: &A::Value, b: &A::Value) -> u64 {
        self.app.combine_cost(key, a, b)
    }

    fn value_bytes(&self, key: &A::Key, v: &A::Value) -> u64 {
        self.app.value_bytes(key, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl MapReduceApp for Sum {
        type Input = u64;
        type Key = ();
        type Value = u64;
        type Output = u64;
        fn map(&self, input: &u64, emit: &mut dyn FnMut((), u64)) {
            emit((), *input);
        }
        fn combine(&self, _k: &(), a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &(), parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
        fn combine_cost(&self, _k: &(), _a: &u64, _b: &u64) -> u64 {
            7
        }
    }

    #[test]
    fn app_combiner_forwards_everything() {
        let c = AppCombiner::new(Arc::new(Sum));
        assert_eq!(c.combine(&(), &2, &3), 5);
        assert_eq!(c.cost(&(), &2, &3), 7);
        assert!(c.is_commutative());
        assert_eq!(c.value_bytes(&(), &5), 16);
    }
}
