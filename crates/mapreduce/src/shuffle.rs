//! Deterministic shuffle partitioning.

use std::hash::{Hash, Hasher};

use slider_core::StableHasher;

/// `std::hash::Hasher` adapter over the crate's stable 64-bit hasher, so
/// partition assignment is identical across runs and processes (Hadoop's
/// `HashPartitioner` analog).
struct StableStdHasher(StableHasher);

impl Hasher for StableStdHasher {
    fn finish(&self) -> u64 {
        self.0.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0.write_bytes(bytes);
    }

    fn write_u64(&mut self, x: u64) {
        self.0.write_u64(x);
    }
}

/// Deterministic 64-bit hash of any `Hash` value (stable across runs and
/// processes, unlike `DefaultHasher`).
///
/// ```
/// let h = slider_mapreduce::stable_hash(&("a", 1));
/// assert_eq!(h, slider_mapreduce::stable_hash(&("a", 1)));
/// ```
pub fn stable_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = StableStdHasher(StableHasher::new());
    key.hash(&mut hasher);
    hasher.finish()
}

/// Returns the reduce partition (0-based) responsible for `key`.
///
/// ```
/// let p = slider_mapreduce::partition_of(&"hello", 8);
/// assert!(p < 8);
/// assert_eq!(p, slider_mapreduce::partition_of(&"hello", 8));
/// ```
///
/// # Panics
///
/// Panics if `partitions` is zero.
pub fn partition_of<K: Hash + ?Sized>(key: &K, partitions: usize) -> usize {
    assert!(partitions > 0, "at least one reduce partition is required");
    let mut hasher = StableStdHasher(StableHasher::new());
    key.hash(&mut hasher);
    usize::try_from(hasher.finish() % partitions as u64).expect("bounded by partition count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_stable_and_in_range() {
        for i in 0..1000u64 {
            let p = partition_of(&i, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&i, 7));
        }
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[partition_of(&format!("key-{i}"), 8)] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "partition {p} holds {c} of 8000 keys — badly skewed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_partitions_panics() {
        let _ = partition_of(&1u8, 0);
    }
}
