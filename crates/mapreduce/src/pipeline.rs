//! Multi-job pipelines with per-stage incremental processing (paper §5).
//!
//! Declarative queries compile into a pipeline of MapReduce jobs. Only the
//! first job consumes the sliding window directly, so only it can use the
//! window-specific self-adjusting tree; from the second stage onwards,
//! input changes appear at *arbitrary positions*. Slider handles those
//! stages with the strawman contraction tree: each stage's input is hashed
//! into a fixed number of buckets, changed buckets dirty the keys they
//! contain, and per-key strawman trees re-pair with memoization so fresh
//! combiner work stays proportional to the changed buckets.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use slider_cluster::{simulate, SimReport, Task};
use slider_core::{hash_pair, StrawmanTree, TreeCx, UpdateStats};

use crate::app::{AppCombiner, MapReduceApp};
use crate::error::JobError;
use crate::runtime::Runtime;
use crate::shuffle::partition_of;
use crate::split::Split;
use crate::stats::RunStats;
use crate::windowed::{JobConfig, SimulationConfig, WindowedJob};

/// A pipeline stage: a plain MapReduce application plus a rendering of its
/// reduced output back into rows for the next stage.
pub trait StageApp: MapReduceApp {
    /// Row type flowing *out* of this stage (and into the next).
    type Row: Clone + Eq + Hash + Send + Sync;

    /// Renders one reduced key into output rows.
    fn render(&self, key: &Self::Key, output: &Self::Output) -> Vec<Self::Row>;
}

/// Input rows handed to an inner pipeline stage.
pub type StageInput<R> = Vec<R>;

/// Work metered for one inner stage's run.
#[derive(Debug, Clone, Default)]
pub struct InnerStageStats {
    /// Map work over changed buckets.
    pub map_work: u64,
    /// Contraction work (strawman re-pairing).
    pub tree: UpdateStats,
    /// Reduce work over dirty keys.
    pub reduce_work: u64,
    /// Buckets whose content changed this run.
    pub buckets_changed: usize,
    /// Buckets total.
    pub buckets_total: usize,
    /// Keys re-reduced.
    pub keys_reduced: usize,
    /// Simulated schedule of this stage's job (when the pipeline's first
    /// job has simulation configured).
    pub sim: Option<SimReport>,
}

impl InnerStageStats {
    /// Total work units this stage spent.
    pub fn total_work(&self) -> u64 {
        self.map_work + self.tree.foreground.work + self.reduce_work
    }
}

/// Result of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineRunResult {
    /// Stats of the window-facing first stage.
    pub first: RunStats,
    /// Stats of each inner stage, in pipeline order.
    pub inner: Vec<InnerStageStats>,
}

impl PipelineRunResult {
    /// Total foreground work across all stages.
    pub fn total_work(&self) -> u64 {
        self.first.work.foreground_total()
            + self
                .inner
                .iter()
                .map(InnerStageStats::total_work)
                .sum::<u64>()
    }

    /// End-to-end simulated runtime: the first job's makespan plus every
    /// inner job's simulated makespan (jobs are pipelined sequentially).
    /// `None` when the pipeline runs without simulation.
    pub fn total_time(&self) -> Option<f64> {
        let mut t = self.first.time_seconds()?;
        for stage in &self.inner {
            t += stage.sim.as_ref()?.makespan;
        }
        Some(t)
    }

    /// Recovery work of this run. Fault plans attach to the window-facing
    /// first stage (inner stages hold only state derivable from its rows),
    /// so this is the first job's [`RecoveryStats`].
    pub fn recovery(&self) -> &crate::stats::RecoveryStats {
        &self.first.recovery
    }

    /// Background self-healing work of this run. Like fault plans, the
    /// memoization cache attaches to the window-facing first stage, so
    /// this is the first job's [`slider_dcache::RepairStats`].
    pub fn repair(&self) -> &slider_dcache::RepairStats {
        &self.first.repair
    }
}

/// Object-safe view of an inner stage for heterogeneous pipelines.
trait DynInnerStage<R>: Send {
    fn run(
        &mut self,
        rows: &[R],
        sim: Option<&SimulationConfig>,
        runtime: &Runtime,
    ) -> InnerStageStats;
    fn output_rows(&self) -> Vec<R>;
    fn name(&self) -> &str;
}

/// One change-detection bucket of an inner stage, self-contained so the
/// shared [`Runtime`] can re-map changed buckets in parallel.
struct BucketState<K, V> {
    /// Content hash from the previous run.
    hash: u64,
    /// Per-key combined value and its version counter.
    values: BTreeMap<K, (V, u64)>,
}

/// What one bucket reports back from a (possible) re-map.
struct BucketOutcome<K> {
    changed: bool,
    map_work: u64,
    dirty: Vec<K>,
}

/// What one dirty key's strawman re-pair + reduce reports back.
struct KeyOutcome<A: MapReduceApp> {
    tree_stats: UpdateStats,
    reduce_work: u64,
    /// `None` when the key's leaf set emptied and the key disappears.
    output: Option<A::Output>,
}

/// An inner pipeline stage: bucket-diffed strawman-tree incremental
/// MapReduce over the previous stage's output rows.
struct InnerStage<A: StageApp<Input = R>, R> {
    name: String,
    app: Arc<A>,
    combiner: AppCombiner<A>,
    buckets: usize,
    /// When false (vanilla baseline), all state is discarded every run and every
    /// bucket recomputes from scratch.
    incremental: bool,
    /// Per-bucket change-detection state.
    buckets_state: Vec<BucketState<A::Key, A::Value>>,
    /// Per-key strawman trees over (bucket, version)-identified leaves.
    trees: HashMap<A::Key, StrawmanTree<A::Value>>,
    output: BTreeMap<A::Key, A::Output>,
}

impl<A: StageApp<Input = R>, R: Clone + Eq + Hash + Send + Sync> InnerStage<A, R> {
    fn new(name: String, app: A, buckets: usize, incremental: bool) -> Self {
        let app = Arc::new(app);
        InnerStage {
            name,
            combiner: AppCombiner::new(Arc::clone(&app)),
            app,
            buckets,
            incremental,
            buckets_state: (0..buckets)
                .map(|_| BucketState {
                    hash: 0,
                    values: BTreeMap::new(),
                })
                .collect(),
            trees: HashMap::new(),
            output: BTreeMap::new(),
        }
    }

    /// Order-insensitive content hash of a bucket's rows.
    fn content_hash(rows: &[&R]) -> u64 {
        rows.iter()
            .map(|r| hash_pair(crate::shuffle::stable_hash(*r), 0x5740_6e00))
            .fold(0u64, u64::wrapping_add)
    }

    /// Re-maps one bucket if its content changed: map + map-side combine,
    /// then a diff against the bucket's previous per-key values. Runs on a
    /// runtime worker; everything it touches is owned by the bucket.
    fn run_bucket(
        app: &A,
        state: &mut BucketState<A::Key, A::Value>,
        rows: &[&R],
    ) -> BucketOutcome<A::Key> {
        let hash = Self::content_hash(rows);
        if hash == state.hash {
            return BucketOutcome {
                changed: false,
                map_work: 0,
                dirty: Vec::new(),
            };
        }
        state.hash = hash;
        let mut map_work = 0u64;

        // Re-map the changed bucket (charged to map work).
        let mut fresh: BTreeMap<A::Key, A::Value> = BTreeMap::new();
        for row in rows {
            map_work += app.map_cost(row);
            let work = &mut map_work;
            let mut emit = |key: A::Key, value: A::Value| match fresh.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let key = e.key().clone();
                    *work += app.combine_cost(&key, e.get(), &value);
                    let merged = app.combine(&key, e.get(), &value);
                    *e.get_mut() = merged;
                }
            };
            app.map(row, &mut emit);
        }

        // Diff against the bucket's previous per-key values.
        let mut dirty = Vec::new();
        let old = std::mem::take(&mut state.values);
        let mut next: BTreeMap<A::Key, (A::Value, u64)> = BTreeMap::new();
        for (key, (value, version)) in old {
            match fresh.remove(&key) {
                Some(new_value) => {
                    // Key stays in the bucket: bump the version so its
                    // leaf identity (and root path) refreshes.
                    dirty.push(key.clone());
                    next.insert(key, (new_value, version + 1));
                }
                None => {
                    // Key left the bucket.
                    dirty.push(key);
                    let _ = (value, version);
                }
            }
        }
        for (key, value) in fresh {
            dirty.push(key.clone());
            next.insert(key, (value, 0));
        }
        state.values = next;
        BucketOutcome {
            changed: true,
            map_work,
            dirty,
        }
    }

    /// Re-pairs one dirty key's strawman tree over its current leaves and
    /// reduces the root. Runs on a runtime worker; the tree is owned, the
    /// bucket states are shared read-only.
    fn run_key(
        app: &A,
        combiner: &AppCombiner<A>,
        buckets_state: &[BucketState<A::Key, A::Value>],
        key: &A::Key,
        tree: &mut StrawmanTree<A::Value>,
    ) -> KeyOutcome<A> {
        let leaves: Vec<(u64, Arc<A::Value>)> = buckets_state
            .iter()
            .enumerate()
            .filter_map(|(b, state)| {
                state.values.get(key).map(|(value, version)| {
                    (hash_pair(b as u64, *version), Arc::new(value.clone()))
                })
            })
            .collect();
        if leaves.is_empty() {
            return KeyOutcome {
                tree_stats: UpdateStats::default(),
                reduce_work: 0,
                output: None,
            };
        }
        let mut tree_stats = UpdateStats::default();
        let mut cx = TreeCx::new(combiner, key, &mut tree_stats);
        tree.set_leaves(&mut cx, leaves);
        let root = slider_core::WindowAggregator::<A::Key, A::Value>::root(tree)
            .expect("non-empty leaf set has a root");
        let refs = [root.as_ref()];
        let reduce_work = app.reduce_cost(key, &refs);
        let output = app.reduce(key, &refs);
        KeyOutcome {
            tree_stats,
            reduce_work,
            output: Some(output),
        }
    }
}

impl<A, R> DynInnerStage<R> for InnerStage<A, R>
where
    A: StageApp<Input = R, Row = R>,
    R: Clone + Eq + Hash + Send + Sync + 'static,
{
    fn run(
        &mut self,
        rows: &[R],
        sim: Option<&SimulationConfig>,
        runtime: &Runtime,
    ) -> InnerStageStats {
        let mut stats = InnerStageStats {
            buckets_total: self.buckets,
            ..Default::default()
        };

        if !self.incremental {
            // Vanilla baseline: forget everything so every bucket re-maps
            // and every key re-reduces from scratch.
            for state in &mut self.buckets_state {
                state.hash = u64::MAX;
                state.values.clear();
            }
            self.trees.clear();
            self.output.clear();
        }

        // 1. Assign rows to buckets.
        let mut by_bucket: Vec<Vec<&R>> = (0..self.buckets).map(|_| Vec::new()).collect();
        for row in rows {
            by_bucket[partition_of(row, self.buckets)].push(row);
        }

        // 2. Hash, re-map, and diff every bucket, in parallel across bucket
        //    shards. Outcomes come back in bucket order, so the stat fold
        //    below is identical for any worker count.
        let app = &*self.app;
        type BucketTask<'t, K, V, R> = (&'t mut BucketState<K, V>, Vec<&'t R>);
        let mut bucket_tasks: Vec<BucketTask<'_, A::Key, A::Value, R>> =
            self.buckets_state.iter_mut().zip(by_bucket).collect();
        let bucket_outcomes = runtime.map_mut(&mut bucket_tasks, |_, (state, rows)| {
            Self::run_bucket(app, state, rows)
        });
        drop(bucket_tasks);
        let mut dirty_keys: std::collections::BTreeSet<A::Key> = std::collections::BTreeSet::new();
        for outcome in bucket_outcomes {
            stats.buckets_changed += usize::from(outcome.changed);
            stats.map_work += outcome.map_work;
            dirty_keys.extend(outcome.dirty);
        }

        // 3. Re-pair the strawman tree of every dirty key, in parallel. Each
        //    worker owns the key's tree (detached from the map) and reads the
        //    bucket states; outcomes fold in sorted key order.
        let mut key_tasks: Vec<(A::Key, StrawmanTree<A::Value>)> = dirty_keys
            .into_iter()
            .map(|key| {
                let tree = self.trees.remove(&key).unwrap_or_default();
                (key, tree)
            })
            .collect();
        let combiner = &self.combiner;
        let buckets_state = &self.buckets_state;
        let key_outcomes = runtime.map_mut(&mut key_tasks, |_, (key, tree)| {
            Self::run_key(app, combiner, buckets_state, key, tree)
        });
        stats.tree = UpdateStats::merged(key_outcomes.iter().map(|o| &o.tree_stats));
        for ((key, tree), outcome) in key_tasks.into_iter().zip(key_outcomes) {
            stats.reduce_work += outcome.reduce_work;
            match outcome.output {
                Some(out) => {
                    stats.keys_reduced += 1;
                    self.trees.insert(key.clone(), tree);
                    self.output.insert(key, out);
                }
                None => {
                    // Leaf set emptied: the key's tree stays detached
                    // (dropped) and its output disappears.
                    self.output.remove(&key);
                }
            }
        }

        // Simulate this job's schedule: one map task per re-mapped bucket,
        // the tree+reduce work spread over the stage's reduce-side
        // parallelism.
        if let Some(sim) = sim {
            let machines = sim.cluster.len().max(1);
            let mut tasks_map = Vec::new();
            if stats.buckets_changed > 0 {
                let per = stats.map_work / stats.buckets_changed as u64;
                for b in 0..stats.buckets_changed {
                    tasks_map.push(
                        Task::map(b as u64, per).prefer(slider_cluster::MachineId(b % machines)),
                    );
                }
            }
            let reduce_work = stats.tree.foreground.work + stats.reduce_work;
            let reducers = self.buckets.clamp(1, 8);
            let tasks_reduce: Vec<Task> = (0..reducers)
                .map(|r| {
                    Task::reduce(1_000 + r as u64, reduce_work / reducers as u64)
                        .prefer(slider_cluster::MachineId(r % machines))
                })
                .collect();
            stats.sim = Some(simulate(
                &sim.cluster,
                sim.policy,
                &[tasks_map, tasks_reduce],
            ));
        }
        stats
    }

    fn output_rows(&self) -> Vec<R> {
        self.output
            .iter()
            .flat_map(|(key, out)| self.app.render(key, out))
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A multi-job incremental pipeline: a window-facing [`WindowedJob`]
/// followed by strawman-tree inner stages (§5).
pub struct Pipeline<F>
where
    F: StageApp,
{
    first: WindowedJob<F>,
    first_app: Arc<F>,
    inner: Vec<Box<dyn DynInnerStage<F::Row>>>,
}

impl<F: StageApp> fmt::Debug for Pipeline<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("first", &self.first)
            .field("inner_stages", &self.inner.len())
            .finish()
    }
}

impl<F> Pipeline<F>
where
    F: StageApp + Clone,
    F::Row: 'static,
{
    /// Creates a pipeline whose first stage runs `app` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`JobError::BadConfig`] from the first-stage job.
    pub fn new(app: F, config: JobConfig) -> Result<Self, JobError> {
        let first_app = Arc::new(app.clone());
        let first = WindowedJob::new(app, config)?;
        Ok(Pipeline {
            first,
            first_app,
            inner: Vec::new(),
        })
    }

    /// Appends an inner stage consuming the previous stage's rows, with its
    /// input hashed into `buckets` buckets for change detection.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn add_stage<A>(mut self, name: impl Into<String>, app: A, buckets: usize) -> Self
    where
        A: StageApp<Input = F::Row, Row = F::Row> + 'static,
    {
        assert!(buckets > 0, "an inner stage needs at least one bucket");
        // A vanilla (recompute) first stage makes the whole pipeline the
        // non-incremental baseline: inner stages recompute too.
        let incremental = self.first.config().mode != crate::windowed::ExecMode::Recompute;
        self.inner.push(Box::new(InnerStage::new(
            name.into(),
            app,
            buckets,
            incremental,
        )));
        self
    }

    /// Number of stages (first + inner).
    pub fn stages(&self) -> usize {
        1 + self.inner.len()
    }

    /// Names of the inner stages, in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.inner.iter().map(|s| s.name()).collect()
    }

    /// Runs the initial window through every stage.
    ///
    /// # Errors
    ///
    /// Propagates first-stage errors; inner stages are infallible.
    pub fn initial_run(
        &mut self,
        splits: Vec<Split<F::Input>>,
    ) -> Result<PipelineRunResult, JobError> {
        let first = self.first.initial_run(splits)?;
        Ok(self.run_inner(first))
    }

    /// Slides the window and propagates the change through every stage.
    ///
    /// # Errors
    ///
    /// Propagates first-stage errors; inner stages are infallible.
    pub fn advance(
        &mut self,
        remove_splits: usize,
        added: Vec<Split<F::Input>>,
    ) -> Result<PipelineRunResult, JobError> {
        let first = self.first.advance(remove_splits, added)?;
        Ok(self.run_inner(first))
    }

    /// Rows produced by the final stage.
    pub fn final_rows(&self) -> Vec<F::Row> {
        match self.inner.last() {
            Some(stage) => stage.output_rows(),
            None => self.first_stage_rows(),
        }
    }

    /// The first stage's windowed job (for inspection).
    pub fn first_stage(&self) -> &WindowedJob<F> {
        &self.first
    }

    /// The shared execution runtime every stage of this pipeline runs on.
    pub fn runtime(&self) -> &Runtime {
        self.first.runtime()
    }

    /// The trace sink every stage of this pipeline emits to (owned by the
    /// window-facing first job; see [`WindowedJob::trace`]).
    pub fn trace(&self) -> &slider_trace::TraceSink {
        self.first.trace()
    }

    fn first_stage_rows(&self) -> Vec<F::Row> {
        self.first
            .output()
            .iter()
            .flat_map(|(key, out)| self.first_app.render(key, out))
            .collect()
    }

    fn run_inner(&mut self, first: RunStats) -> PipelineRunResult {
        let sim = self.first.config().simulation.clone();
        let runtime = self.first.runtime().clone();
        let trace = self.first.trace().clone();
        let mut result = PipelineRunResult {
            first,
            inner: Vec::new(),
        };
        let mut rows = self.first_stage_rows();
        for stage in &mut self.inner {
            let stats = stage.run(&rows, sim.as_ref(), &runtime);
            rows = stage.output_rows();
            // One Stage span per inner stage, with phase leaves carrying
            // the exact work operands stored in `InnerStageStats` — the
            // pipeline track reconciles per kind against the stats fold.
            trace.with(|t| {
                use slider_trace::SpanKind;
                let tr = t.track("pipeline");
                let span = t.begin(tr, SpanKind::Stage, format!("stage {}", stage.name()));
                if stats.map_work > 0 {
                    let leaf = t.leaf(tr, SpanKind::Map, "map", stats.map_work);
                    t.arg(leaf, "buckets_changed", stats.buckets_changed as u64);
                }
                if stats.tree.foreground.work > 0 {
                    t.leaf(
                        tr,
                        SpanKind::ContractionFg,
                        "contraction-fg",
                        stats.tree.foreground.work,
                    );
                }
                if stats.reduce_work > 0 {
                    t.leaf(tr, SpanKind::Reduce, "reduce", stats.reduce_work);
                }
                t.end(span);
                t.add("pipeline.buckets_changed", stats.buckets_changed as u64);
                t.add("pipeline.keys_reduced", stats.keys_reduced as u64);
            });
            result.inner.push(stats);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::make_splits;
    use crate::windowed::ExecMode;

    /// Stage 1: word count over text lines, rendering "word count" rows.
    #[derive(Clone)]
    struct WordCount;
    impl MapReduceApp for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for word in line.split_whitespace() {
                emit(word.to_string(), 1);
            }
        }
        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }
    impl StageApp for WordCount {
        type Row = (String, u64);
        fn render(&self, key: &String, output: &u64) -> Vec<(String, u64)> {
            vec![(key.clone(), *output)]
        }
    }

    /// Stage 2: histogram of counts — how many words occur `n` times.
    struct CountHistogram;
    impl MapReduceApp for CountHistogram {
        type Input = (String, u64);
        type Key = u64;
        type Value = u64;
        type Output = u64;
        fn map(&self, row: &(String, u64), emit: &mut dyn FnMut(u64, u64)) {
            emit(row.1, 1);
        }
        fn combine(&self, _k: &u64, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &u64, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }
    impl StageApp for CountHistogram {
        type Row = (String, u64);
        fn render(&self, key: &u64, output: &u64) -> Vec<(String, u64)> {
            vec![(format!("count:{key}"), *output)]
        }
    }

    fn reference_histogram(window: &[&str]) -> BTreeMap<String, u64> {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for line in window {
            for word in line.split_whitespace() {
                *counts.entry(word.to_string()).or_insert(0) += 1;
            }
        }
        let mut hist: BTreeMap<String, u64> = BTreeMap::new();
        for count in counts.values() {
            *hist.entry(format!("count:{count}")).or_insert(0) += 1;
        }
        hist
    }

    fn build() -> Pipeline<WordCount> {
        Pipeline::new(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
        )
        .unwrap()
        .add_stage("histogram", CountHistogram, 4)
    }

    #[test]
    fn two_stage_pipeline_matches_reference() {
        let corpus = ["a b c", "b c d", "c d e", "a a", "e e e e"];
        let mut pipeline = build();
        pipeline
            .initial_run(make_splits(
                0,
                corpus[0..3].iter().map(|s| s.to_string()).collect(),
                1,
            ))
            .unwrap();
        let got: BTreeMap<String, u64> = pipeline.final_rows().into_iter().collect();
        assert_eq!(got, reference_histogram(&corpus[0..3]));

        // Slide: drop one split, add two.
        pipeline
            .advance(
                1,
                make_splits(10, corpus[3..5].iter().map(|s| s.to_string()).collect(), 1),
            )
            .unwrap();
        let got: BTreeMap<String, u64> = pipeline.final_rows().into_iter().collect();
        assert_eq!(got, reference_histogram(&corpus[1..5]));
    }

    #[test]
    fn inner_stage_work_scales_with_changed_buckets() {
        // Large stable vocabulary; a slide touching few words should leave
        // most inner-stage buckets untouched.
        let lines: Vec<String> = (0..128).map(|i| format!("w{i}")).collect();
        let mut pipeline = Pipeline::new(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
        )
        .unwrap()
        .add_stage("histogram", CountHistogram, 16);
        let initial = pipeline.initial_run(make_splits(0, lines, 4)).unwrap();
        assert_eq!(
            initial.inner[0].buckets_changed, 16,
            "initial run touches all"
        );

        let update = pipeline
            .advance(1, make_splits(100, vec!["w0 w1 w2 w3".to_string()], 4))
            .unwrap();
        let inner = &update.inner[0];
        assert!(
            inner.buckets_changed < inner.buckets_total,
            "only buckets containing changed counts should re-map ({}/{})",
            inner.buckets_changed,
            inner.buckets_total
        );
        assert!(update.total_work() < initial.total_work());
    }

    #[test]
    fn memo_loss_in_the_first_stage_leaves_pipeline_rows_identical() {
        let corpus = ["a b c", "b c d", "c d e", "a a", "e e e e", "b d"];
        let plan = crate::fault::JobFaultPlan::none().lose_memo(1, vec![0, 1]);
        let run = |faults: Option<crate::fault::JobFaultPlan>| {
            let mut config = JobConfig::new(ExecMode::slider_folding()).with_partitions(2);
            if let Some(f) = faults {
                config = config.with_faults(f);
            }
            let mut pipeline =
                Pipeline::new(WordCount, config)
                    .unwrap()
                    .add_stage("histogram", CountHistogram, 4);
            pipeline
                .initial_run(make_splits(
                    0,
                    corpus[0..3].iter().map(|s| s.to_string()).collect(),
                    1,
                ))
                .unwrap();
            let stats = pipeline
                .advance(
                    1,
                    make_splits(10, corpus[3..6].iter().map(|s| s.to_string()).collect(), 1),
                )
                .unwrap();
            let mut rows = pipeline.final_rows();
            rows.sort();
            (rows, stats)
        };
        let (faulty_rows, faulty_stats) = run(Some(plan));
        let (twin_rows, twin_stats) = run(None);
        assert_eq!(faulty_rows, twin_rows, "loss must not change pipeline rows");
        assert_eq!(faulty_stats.recovery().lost_partitions, 2);
        assert!(faulty_stats.recovery().rebuild_work > 0);
        assert!(twin_stats.recovery().is_zero());
    }

    #[test]
    fn single_stage_pipeline_renders_first_stage() {
        let mut pipeline = Pipeline::new(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
        )
        .unwrap();
        pipeline
            .initial_run(make_splits(0, vec!["x y x".to_string()], 1))
            .unwrap();
        let mut rows = pipeline.final_rows();
        rows.sort();
        assert_eq!(rows, vec![("x".to_string(), 2), ("y".to_string(), 1)]);
        assert_eq!(pipeline.stages(), 1);
    }

    #[test]
    fn inner_stage_results_do_not_depend_on_thread_count() {
        let corpus: Vec<String> = (0..96)
            .map(|i| format!("w{} w{} shared", i % 31, i % 7))
            .collect();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut pipeline = Pipeline::new(
                WordCount,
                JobConfig::new(ExecMode::slider_folding())
                    .with_partitions(3)
                    .with_threads(threads),
            )
            .unwrap()
            .add_stage("histogram", CountHistogram, 8);
            let initial = pipeline
                .initial_run(make_splits(0, corpus.clone(), 4))
                .unwrap();
            let update = pipeline
                .advance(2, make_splits(500, vec!["w0 w1 fresh".to_string()], 1))
                .unwrap();
            let rows: BTreeMap<String, u64> = pipeline.final_rows().into_iter().collect();
            runs.push((rows, format!("{initial:?} {update:?}")));
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 threads");
        assert_eq!(runs[0], runs[2], "1 vs 4 threads");
    }

    #[test]
    fn stage_names_are_tracked() {
        let pipeline = build();
        assert_eq!(pipeline.stage_names(), vec!["histogram"]);
        assert_eq!(pipeline.stages(), 2);
    }
}
