//! # slider-mapreduce — a MapReduce engine with transparent incremental
//! sliding-window execution
//!
//! This crate is the reproduction's stand-in for the Hadoop 0.20.2 fork the
//! Slider paper builds on. It executes *real* MapReduce computations
//! in-process (map → shuffle/partition → contraction → reduce) over a
//! sliding window of input splits, while metering the modeled *work* of
//! every phase and (optionally) simulating the cluster schedule to obtain
//! the *time* metric.
//!
//! The [`WindowedJob`] driver supports four execution modes
//! ([`ExecMode`]):
//!
//! * `Recompute` — vanilla Hadoop: reprocess the whole window from scratch.
//! * `Strawman` — memoization-only incremental baseline (paper §2).
//! * `Slider { tree, split_processing }` — self-adjusting contraction trees
//!   (§3–4), optionally with split background/foreground processing.
//!
//! Applications implement [`MapReduceApp`] exactly as they would for plain
//! batch processing — the paper's transparency claim — and the engine picks
//! the incremental machinery.
//!
//! ```
//! use slider_mapreduce::{ExecMode, JobConfig, MapReduceApp, Split, WindowedJob};
//!
//! /// Word count, written with no incremental logic whatsoever.
//! struct WordCount;
//! impl MapReduceApp for WordCount {
//!     type Input = String;
//!     type Key = String;
//!     type Value = u64;
//!     type Output = u64;
//!     fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
//!         for word in line.split_whitespace() {
//!             emit(word.to_string(), 1);
//!         }
//!     }
//!     fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 { a + b }
//!     fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
//!         parts.iter().copied().sum()
//!     }
//! }
//!
//! let config = JobConfig::new(ExecMode::slider_folding()).with_partitions(4);
//! let mut job = WindowedJob::new(WordCount, config)?;
//! job.initial_run(vec![
//!     Split::from_records(0, vec!["a b a".to_string()]),
//!     Split::from_records(1, vec!["b c".to_string()]),
//! ])?;
//! assert_eq!(job.output().get("a"), Some(&2));
//!
//! // Slide: drop the first split, append a new one.
//! job.advance(1, vec![Split::from_records(2, vec!["c c".to_string()])])?;
//! assert_eq!(job.output().get("a"), None);
//! assert_eq!(job.output().get("c"), Some(&3));
//! # Ok::<(), slider_mapreduce::JobError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Work metering mixes u64 byte/work counters with usize collection sizes
// and f64 cost models; every narrowing must be explicit and checked.
#![deny(clippy::cast_possible_truncation)]

mod app;
mod error;
mod event;
mod fault;
mod feeder;
mod pipeline;
mod retry;
mod runtime;
mod shared;
mod shuffle;
mod split;
mod stats;
mod windowed;

pub use app::{AppCombiner, MapReduceApp};
pub use error::JobError;
pub use event::{
    EventFeeder, EventTimeConfig, EventTimeStats, FeedEvent, FeederCheckpoint, Stamped,
};
pub use fault::{
    CacheCorruption, CacheNodeEvent, JobFaultPlan, JobMachineCrash, JobStraggler, MemoLoss,
};
pub use feeder::WindowFeeder;
pub use pipeline::{InnerStageStats, Pipeline, PipelineRunResult, StageApp, StageInput};
pub use retry::RetryPolicy;
pub use runtime::{Runtime, THREADS_ENV};
pub use shared::{EngineShared, EngineSharedBuilder};
pub use shuffle::{partition_of, stable_hash};
pub use split::{make_splits, Split, SplitId};
pub use stats::{RecoveryStats, RunStats, WorkBreakdown};
pub use windowed::{ExecMode, JobCheckpoint, JobConfig, RunResult, SimulationConfig, WindowedJob};

// Re-export the trace surface jobs are configured with, so engine users
// need no direct `slider-trace` dependency for the common path.
pub use slider_trace::{SpanKind, TraceSink, TraceSnapshot, TRACE_ENV};
