//! `WindowFeeder`: batch-oriented window management on top of
//! [`WindowedJob`].
//!
//! Stream consumers usually receive *batches* (an hour of logs, a week of
//! uploads) whose record counts vary, while [`WindowedJob::advance`] speaks
//! in splits. The feeder handles the split bookkeeping: it chops each batch
//! into splits, tracks how many splits each in-window batch contributed
//! (they differ — that is exactly the variable-width case, §8.3), and drops
//! the oldest batch when the window is full.

use std::collections::VecDeque;

use crate::app::MapReduceApp;
use crate::error::JobError;
use crate::split::make_splits;
use crate::stats::RunStats;
use crate::windowed::WindowedJob;

/// Feeds batches into a windowed job, managing the split-level window.
///
/// ```
/// use slider_mapreduce::{ExecMode, JobConfig, MapReduceApp, WindowedJob, WindowFeeder};
///
/// # struct WordCount;
/// # impl MapReduceApp for WordCount {
/// #     type Input = String; type Key = String; type Value = u64; type Output = u64;
/// #     fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
/// #         for w in line.split_whitespace() { emit(w.to_string(), 1); }
/// #     }
/// #     fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 { a + b }
/// #     fn reduce(&self, _k: &String, p: &[&u64]) -> u64 { p.iter().copied().sum() }
/// # }
/// let job = WindowedJob::new(WordCount, JobConfig::new(ExecMode::slider_folding()))?;
/// // Keep the 2 most recent batches, 10 records per split.
/// let mut feeder = WindowFeeder::new(job, 10, Some(2));
/// feeder.push_batch(vec!["a b".into(), "b c".into()])?;
/// feeder.push_batch(vec!["c d".into()])?;
/// assert_eq!(feeder.output().get("b"), Some(&2));
/// feeder.push_batch(vec!["d e".into()])?; // batch 1 slides out
/// assert_eq!(feeder.output().get("a"), None);
/// # Ok::<(), slider_mapreduce::JobError>(())
/// ```
#[derive(Debug)]
pub struct WindowFeeder<A: MapReduceApp> {
    job: WindowedJob<A>,
    records_per_split: usize,
    /// Window size in batches; `None` = append-only (never drop).
    window_batches: Option<usize>,
    /// Splits contributed by each in-window batch, oldest first.
    batch_splits: VecDeque<usize>,
    next_split_id: u64,
    batches_pushed: u64,
}

impl<A: MapReduceApp> WindowFeeder<A> {
    /// Wraps `job`. Each pushed batch is chopped into splits of
    /// `records_per_split` records; once `window_batches` batches are in
    /// the window, every push also drops the oldest batch.
    ///
    /// # Panics
    ///
    /// Panics if `records_per_split` is zero or `window_batches` is
    /// `Some(0)`.
    pub fn new(
        job: WindowedJob<A>,
        records_per_split: usize,
        window_batches: Option<usize>,
    ) -> Self {
        assert!(records_per_split > 0, "records_per_split must be positive");
        assert!(
            window_batches != Some(0),
            "a window must hold at least one batch"
        );
        WindowFeeder {
            job,
            records_per_split,
            window_batches,
            batch_splits: VecDeque::new(),
            next_split_id: 0,
            batches_pushed: 0,
        }
    }

    /// Pushes one batch: appends its splits and, if the window is full,
    /// drops the oldest batch. On a *full* window an empty batch is a
    /// legal slide — the window moves on and the oldest batch ages out.
    /// Before the window fills, an empty batch is rejected with
    /// [`JobError::EmptyBatch`]: there is nothing to compute and no slide
    /// to perform, and silently running a no-op job run would burn a
    /// window slot on nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`JobError`] from the underlying job (e.g. a fixed-width
    /// job whose batches do not align with its bucket geometry), reports
    /// [`JobError::EmptyBatch`] for an empty batch on a non-full window,
    /// and reports [`JobError::EmptyWindow`] if an eviction is due but the
    /// batch bookkeeping holds no batch to evict — a state the constructor
    /// assertions make unreachable, surfaced as a recoverable error rather
    /// than a panic in case the invariant is ever violated.
    pub fn push_batch(&mut self, records: Vec<A::Input>) -> Result<RunStats, JobError> {
        let evict =
            matches!(self.window_batches, Some(window) if self.batch_splits.len() >= window);
        if records.is_empty() && !evict {
            return Err(JobError::EmptyBatch);
        }
        let added = make_splits(self.next_split_id, records, self.records_per_split);
        let remove = if evict {
            self.batch_splits
                .front()
                .copied()
                .ok_or(JobError::EmptyWindow)?
        } else {
            0
        };
        let stats = self.job.advance(remove, added.clone())?;
        // Only mutate bookkeeping after the job accepted the slide.
        if evict {
            self.batch_splits.pop_front();
        }
        self.next_split_id += added.len() as u64;
        self.batch_splits.push_back(added.len());
        self.batches_pushed += 1;
        Ok(stats)
    }

    /// The job's current output.
    pub fn output(&self) -> &std::collections::BTreeMap<A::Key, A::Output> {
        self.job.output()
    }

    /// Batches currently in the window.
    pub fn window_batches(&self) -> usize {
        self.batch_splits.len()
    }

    /// Total batches pushed over the feeder's lifetime.
    pub fn batches_pushed(&self) -> u64 {
        self.batches_pushed
    }

    /// Borrows the underlying job.
    pub fn job(&self) -> &WindowedJob<A> {
        &self.job
    }

    /// Mutably borrows the underlying job (e.g. for cache failure
    /// injection). Do not call `advance` through this borrow — the feeder
    /// would lose track of the window.
    pub fn job_mut(&mut self) -> &mut WindowedJob<A> {
        &mut self.job
    }

    /// Consumes the feeder, returning the job.
    pub fn into_job(self) -> WindowedJob<A> {
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::{ExecMode, JobConfig};

    struct WordCount;
    impl MapReduceApp for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }

    fn feeder(mode: ExecMode, window: Option<usize>) -> WindowFeeder<WordCount> {
        let job = WindowedJob::new(WordCount, JobConfig::new(mode).with_partitions(2)).unwrap();
        WindowFeeder::new(job, 2, window)
    }

    fn batch(lines: &[&str]) -> Vec<String> {
        lines.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn window_slides_after_filling() {
        let mut f = feeder(ExecMode::slider_folding(), Some(3));
        f.push_batch(batch(&["a", "a b"])).unwrap();
        f.push_batch(batch(&["b"])).unwrap();
        f.push_batch(batch(&["c", "c", "c"])).unwrap();
        assert_eq!(f.window_batches(), 3);
        assert_eq!(f.output().get("a"), Some(&2));

        // Fourth batch evicts the first.
        f.push_batch(batch(&["d"])).unwrap();
        assert_eq!(f.window_batches(), 3);
        assert_eq!(f.output().get("a"), None);
        assert_eq!(f.output().get("b"), Some(&1), "batch 2 is still live");
        assert_eq!(f.batches_pushed(), 4);
    }

    #[test]
    fn variable_batch_sizes_drop_the_right_split_counts() {
        let mut f = feeder(ExecMode::slider_folding(), Some(2));
        // 5 lines -> 3 splits of <=2; 1 line -> 1 split.
        f.push_batch(batch(&["x", "x", "x", "x", "x"])).unwrap();
        f.push_batch(batch(&["y"])).unwrap();
        assert_eq!(f.job().window_splits(), 4);
        // Dropping the first batch must remove exactly its 3 splits.
        f.push_batch(batch(&["z"])).unwrap();
        assert_eq!(f.job().window_splits(), 2);
        assert_eq!(f.output().get("x"), None);
        assert_eq!(f.output().get("y"), Some(&1));
    }

    #[test]
    fn append_only_never_drops() {
        let mut f = feeder(ExecMode::slider_coalescing(false), None);
        for i in 0..5 {
            f.push_batch(batch(&[&format!("w{i}")])).unwrap();
        }
        assert_eq!(f.window_batches(), 5);
        assert_eq!(f.output().len(), 5);
    }

    #[test]
    fn empty_batches_still_slide() {
        let mut f = feeder(ExecMode::slider_folding(), Some(2));
        f.push_batch(batch(&["a"])).unwrap();
        f.push_batch(batch(&["b"])).unwrap();
        f.push_batch(Vec::new()).unwrap(); // evicts "a", adds nothing
        assert_eq!(f.output().get("a"), None);
        assert_eq!(f.output().get("b"), Some(&1));
        assert_eq!(f.window_batches(), 2);
    }

    #[test]
    fn empty_batch_before_the_window_fills_is_rejected() {
        // Nothing to compute, nothing to evict: the push is refused and
        // the feeder is untouched — no run executes, no window slot is
        // burned. The same push succeeds once the window is full (see
        // `empty_batches_still_slide`).
        let mut f = feeder(ExecMode::slider_folding(), Some(2));
        let err = f.push_batch(Vec::new()).unwrap_err();
        assert!(matches!(err, JobError::EmptyBatch));
        assert_eq!(f.window_batches(), 0);
        assert_eq!(f.batches_pushed(), 0);
        assert_eq!(f.job().window_splits(), 0);

        // Half-full windows reject too.
        f.push_batch(batch(&["a"])).unwrap();
        let err = f.push_batch(Vec::new()).unwrap_err();
        assert!(matches!(err, JobError::EmptyBatch));
        assert_eq!(f.window_batches(), 1);
        assert_eq!(f.batches_pushed(), 1);

        // Unwindowed (append-only) feeders can never evict, so empty
        // batches are always rejected there.
        let mut unwindowed = feeder(ExecMode::slider_folding(), None);
        unwindowed.push_batch(batch(&["a"])).unwrap();
        let err = unwindowed.push_batch(Vec::new()).unwrap_err();
        assert!(matches!(err, JobError::EmptyBatch));
    }

    #[test]
    fn eviction_from_empty_window_is_a_typed_error() {
        // The constructor forbids `Some(0)` windows, so an eviction can
        // never be due while `batch_splits` is empty in normal operation.
        // Forge that state directly (the test module sees private fields)
        // to pin the release-mode behaviour: a typed error, not a panic —
        // and no bookkeeping corruption.
        let mut f = feeder(ExecMode::slider_folding(), Some(2));
        f.window_batches = Some(0);
        let err = f.push_batch(batch(&["a"])).unwrap_err();
        assert!(matches!(err, JobError::EmptyWindow));
        assert!(err.to_string().contains("empty window"));
        // The failed push must not have mutated the feeder.
        assert_eq!(f.window_batches(), 0);
        assert_eq!(f.batches_pushed(), 0);
        assert_eq!(f.job().window_splits(), 0);
        // Restoring the window lets the feeder resume normally.
        f.window_batches = Some(2);
        f.push_batch(batch(&["a"])).unwrap();
        assert_eq!(f.output().get("a"), Some(&1));
    }

    #[test]
    fn failed_slides_leave_bookkeeping_intact() {
        // An append-only job rejects removals: the feeder with a bounded
        // window will eventually ask for one.
        let mut f = feeder(ExecMode::slider_coalescing(false), Some(1));
        f.push_batch(batch(&["a"])).unwrap();
        let err = f.push_batch(batch(&["b"])).unwrap_err();
        assert!(matches!(err, JobError::ModeViolation(_)));
        // The failed push must not have corrupted the window accounting.
        assert_eq!(f.window_batches(), 1);
        assert_eq!(f.output().get("a"), Some(&1));
    }
}
