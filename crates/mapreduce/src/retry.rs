//! Shared retry/backoff policy for transient-failure recovery.
//!
//! Two layers of the stack retry deterministically: the engine's
//! contraction phase retries `Unavailable` dcache reads while background
//! re-replication catches up ([`WindowedJob`](crate::WindowedJob), metered
//! in [`RecoveryStats`](crate::RecoveryStats)), and `slider-serve` retries
//! a tenant's failed request dispatch before charging its circuit breaker.
//! Both consult one [`RetryPolicy`] so services tune a single knob and the
//! backoff arithmetic — and therefore every downstream f64 accumulator —
//! is bit-identical wherever it runs.
//!
//! Backoff is *simulated* time: attempt `n` costs
//! `base × backoff_factor^n` virtual seconds, charged to the recovery
//! stats and (when present) the shared [`SimClock`]. Nothing ever sleeps.
//!
//! [`SimClock`]: slider_cluster::SimClock

/// Bounded-retry policy with deterministic exponential backoff.
///
/// The default (2 retries, factor 2.0) reproduces the engine's historical
/// hard-coded dcache-read behavior bit-for-bit: retry `n` backs off by
/// `2^n ×` the base delay, matching the former `1 << retries` multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Per-retry backoff growth factor; retry `n` (1-based) waits
    /// `backoff_factor^n` times the caller's base delay.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` attempts and `backoff_factor` growth.
    #[must_use]
    pub fn new(max_retries: u32, backoff_factor: f64) -> Self {
        RetryPolicy {
            max_retries,
            backoff_factor,
        }
    }

    /// The fail-fast policy: no retries, no backoff.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_factor: 1.0,
        }
    }

    /// Backoff multiplier for 1-based retry `attempt`:
    /// `backoff_factor^attempt`. Computed by binary exponentiation
    /// (`f64::powi`), which for integral factors like 2.0 is exact and
    /// bit-identical to the legacy `(1 << attempt)` table.
    #[must_use]
    pub fn backoff_multiplier(&self, attempt: u32) -> f64 {
        self.backoff_factor
            .powi(i32::try_from(attempt).unwrap_or(i32::MAX))
    }

    /// Checks the policy is usable: the factor must be finite and at
    /// least 1 (backoff may not shrink).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(format!(
                "retry backoff factor must be finite and >= 1, got {}",
                self.backoff_factor
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_legacy_shift_table() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_retries, 2);
        for attempt in 1u32..=10 {
            let legacy = f64::from(1u32 << attempt);
            assert_eq!(
                policy.backoff_multiplier(attempt).to_bits(),
                legacy.to_bits(),
                "attempt {attempt} must be bit-identical to the old table"
            );
        }
    }

    #[test]
    fn none_is_fail_fast() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_retries, 0);
        assert!(policy.validate().is_ok());
    }

    #[test]
    fn validation_rejects_shrinking_or_non_finite_factors() {
        assert!(RetryPolicy::new(1, 0.5).validate().is_err());
        assert!(RetryPolicy::new(1, f64::NAN).validate().is_err());
        assert!(RetryPolicy::new(1, f64::INFINITY).validate().is_err());
        assert!(RetryPolicy::new(1, 1.0).validate().is_ok());
    }
}
