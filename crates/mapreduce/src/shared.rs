//! Shared engine infrastructure for multi-job hosts.
//!
//! A standalone [`WindowedJob`](crate::WindowedJob) builds its own world:
//! a runtime, a trace sink, optionally a private memoization cache. That
//! is the wrong shape for a long-running service multiplexing many
//! tenants — the paper's architecture has *one* cluster, *one*
//! memoization layer, and every job's memoized state lives (and is
//! garbage-collected) inside it.
//!
//! [`EngineShared`] bundles the pieces that must be one-per-service:
//!
//! * the [`Runtime`] (thread budget) every job's parallel phases use;
//! * the [`TraceSink`] all jobs emit into (per-job spans stay separable
//!   by track);
//! * an optional [`SharedCache`], with a fresh object-id **namespace**
//!   allocated per registered job so tenants never collide on keys;
//! * an optional [`SharedClock`] accumulating the simulated cluster's
//!   virtual uptime across every tenant's runs;
//! * an optional default [`JobFaultPlan`] inherited by jobs that do not
//!   script their own.
//!
//! Jobs built with [`WindowedJob::with_shared`](crate::WindowedJob::with_shared)
//! attach to these; jobs built with `WindowedJob::new` keep the legacy
//! private world (namespace 0) bit-for-bit.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use slider_cluster::SharedClock;
use slider_dcache::{CacheConfig, DistributedCache, SharedCache};
use slider_trace::TraceSink;

use crate::fault::JobFaultPlan;
use crate::runtime::Runtime;

#[derive(Debug)]
struct SharedParts {
    runtime: Runtime,
    trace: TraceSink,
    cache: Option<SharedCache>,
    clock: Option<SharedClock>,
    faults: Option<JobFaultPlan>,
    /// Next cache namespace to hand out; 0 is reserved for standalone
    /// jobs, so allocation starts at 1.
    next_namespace: AtomicU32,
}

/// Cloneable bundle of engine infrastructure shared by every job of one
/// service (see the module docs). Build with [`EngineShared::builder`].
#[derive(Debug, Clone)]
pub struct EngineShared {
    inner: Arc<SharedParts>,
}

impl EngineShared {
    /// Starts building shared infrastructure.
    #[must_use]
    pub fn builder() -> EngineSharedBuilder {
        EngineSharedBuilder {
            threads: 0,
            trace: TraceSink::disabled(),
            cache: None,
            clock: false,
            faults: None,
        }
    }

    /// The shared parallel runtime.
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.inner.runtime
    }

    /// The shared trace sink (env-resolved at build time).
    #[must_use]
    pub fn trace(&self) -> &TraceSink {
        &self.inner.trace
    }

    /// The shared memoization cache, if one was configured.
    #[must_use]
    pub fn cache(&self) -> Option<&SharedCache> {
        self.inner.cache.as_ref()
    }

    /// The shared simulated-cluster clock, if one was configured.
    #[must_use]
    pub fn clock(&self) -> Option<&SharedClock> {
        self.inner.clock.as_ref()
    }

    /// The default fault plan jobs inherit when they script none.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&JobFaultPlan> {
        self.inner.faults.as_ref()
    }

    /// Hands out the next cache namespace (1, 2, 3, …). Deterministic as
    /// long as the host registers jobs in a deterministic order — which a
    /// sequential service control loop guarantees.
    #[must_use]
    pub fn allocate_namespace(&self) -> u32 {
        self.inner.next_namespace.fetch_add(1, Ordering::Relaxed)
    }

    /// The namespace the next [`EngineShared::allocate_namespace`] call
    /// would hand out. Checkpoints record this so a restored service
    /// resumes allocation exactly where the crashed one stopped (restored
    /// tenants keep their original namespaces; later registrations must
    /// not collide with them).
    #[must_use]
    pub fn namespace_watermark(&self) -> u32 {
        self.inner.next_namespace.load(Ordering::Relaxed)
    }

    /// Reimposes a captured namespace watermark on this (typically fresh)
    /// bundle. The counterpart of [`EngineShared::namespace_watermark`].
    pub fn restore_namespace_watermark(&self, next: u32) {
        self.inner.next_namespace.store(next, Ordering::Relaxed);
    }
}

/// Builder for [`EngineShared`].
#[derive(Debug)]
pub struct EngineSharedBuilder {
    threads: usize,
    trace: TraceSink,
    cache: Option<CacheConfig>,
    clock: bool,
    faults: Option<JobFaultPlan>,
}

impl EngineSharedBuilder {
    /// Thread budget for the shared runtime (`0` = auto, overridable via
    /// `SLIDER_THREADS` exactly like a standalone job).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Trace sink every job emits into. Resolved against the
    /// `SLIDER_TRACE` environment at build time.
    #[must_use]
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Configures one shared memoization cache for all jobs.
    #[must_use]
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Installs a shared simulated-cluster clock; jobs that run the
    /// cluster simulation advance it by each run's makespan.
    #[must_use]
    pub fn clock(mut self) -> Self {
        self.clock = true;
        self
    }

    /// Default fault plan inherited by jobs whose config scripts none.
    #[must_use]
    pub fn faults(mut self, plan: JobFaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the shared bundle.
    #[must_use]
    pub fn build(self) -> EngineShared {
        let trace = self.trace.resolve_env();
        let runtime = Runtime::auto(self.threads).with_trace(trace.clone());
        let cache = self.cache.map(|config| {
            let mut cache = DistributedCache::new(config);
            cache.attach_trace(trace.clone());
            SharedCache::new(cache)
        });
        let clock = self.clock.then(SharedClock::new);
        EngineShared {
            inner: Arc::new(SharedParts {
                runtime,
                trace,
                cache,
                clock,
                faults: self.faults,
                next_namespace: AtomicU32::new(1),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_start_at_one_and_increment() {
        let shared = EngineShared::builder().build();
        assert_eq!(shared.allocate_namespace(), 1);
        assert_eq!(shared.allocate_namespace(), 2);
        let clone = shared.clone();
        assert_eq!(clone.allocate_namespace(), 3, "clones share the counter");
    }

    #[test]
    fn optional_parts_default_off() {
        let shared = EngineShared::builder().build();
        assert!(shared.cache().is_none());
        assert!(shared.clock().is_none());
        assert!(shared.fault_plan().is_none());
        assert!(!shared.trace().is_enabled());
    }

    #[test]
    fn cache_and_clock_are_shared_across_clones() {
        let shared = EngineShared::builder()
            .cache(CacheConfig::paper_defaults(2))
            .clock()
            .build();
        let clone = shared.clone();
        shared.clock().unwrap().advance(2.0);
        assert_eq!(clone.clock().unwrap().seconds(), 2.0);
        shared.cache().unwrap().with(|c| {
            c.put(
                slider_dcache::ObjectId::namespaced(1, 0),
                64,
                slider_dcache::NodeId(0),
                0,
            );
        });
        assert_eq!(clone.cache().unwrap().namespace_stats(1).puts, 1);
    }
}
