//! `EventFeeder`: event-time window management — watermarks, a bounded
//! reorder buffer, and late-record routing on top of [`WindowedJob`]'s
//! interior splice operations.
//!
//! [`crate::WindowFeeder`] assumes records arrive in window order; real
//! streams do not. This feeder stamps every record with an *event time*
//! ([`Stamped`]), buffers open epochs in a reorder buffer, and only closes
//! an epoch — one bulk [`WindowedJob::advance`] — once the **watermark**
//! (the highest event time seen, minus the configured lateness bound) has
//! passed it. Records disordered within the lateness bound are therefore
//! absorbed entirely by the buffer: the resulting runs are *bit-identical*
//! to the runs an in-order stream would produce, for any thread count.
//!
//! Records that arrive *below* the watermark are late. If their epoch is
//! still inside the window they are admitted through
//! [`WindowedJob::insert_splits_at`], which splices them into the interior
//! of the window at their epoch's position; if the epoch has already been
//! evicted they are dropped and counted ([`EventTimeStats::late_dropped`]).
//! Whole in-window epochs can likewise be retracted with
//! [`EventFeeder::retract_epoch`], a bulk interior eviction via
//! [`WindowedJob::evict_splits_range`].

use std::collections::{BTreeMap, VecDeque};

use crate::app::MapReduceApp;
use crate::error::JobError;
use crate::shared::EngineShared;
use crate::split::make_splits;
use crate::stats::RunStats;
use crate::windowed::{JobCheckpoint, WindowedJob};

/// A stream record stamped with its event time and a sequence number.
///
/// `time` places the record in an epoch (`time / epoch_len`); `(time, seq)`
/// orders records *within* an epoch when it closes, so the splits an epoch
/// produces depend only on which records were ingested — never on their
/// arrival order. Callers should keep `(time, seq)` unique per record
/// (a generator-assigned sequence number does it); ties are broken
/// arbitrarily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped<R> {
    /// Event time, in the stream's logical time unit.
    pub time: u64,
    /// Tiebreak between records with equal event times.
    pub seq: u64,
    /// The record handed to the Map phase.
    pub record: R,
}

impl<R> Stamped<R> {
    /// Stamps `record` with `time` and `seq`.
    pub fn new(time: u64, seq: u64, record: R) -> Self {
        Stamped { time, seq, record }
    }

    /// The epoch this record belongs to under `epoch_len`.
    fn epoch(&self, epoch_len: u64) -> u64 {
        self.time / epoch_len
    }
}

/// Event-time configuration for an [`EventFeeder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventTimeConfig {
    /// Width of one epoch in event-time units. An epoch `e` covers times
    /// `[e * epoch_len, (e + 1) * epoch_len)` and closes as one window
    /// advance.
    pub epoch_len: u64,
    /// Records per split when an epoch closes (the last split of an epoch
    /// may be shorter).
    pub records_per_split: usize,
    /// Window size in epochs; `None` = append-only (epochs never leave).
    pub window_epochs: Option<usize>,
    /// Allowed lateness, in event-time units: the watermark trails the
    /// highest event time seen by this much. Records disordered by at most
    /// this bound are reordered transparently; anything later takes the
    /// late path (interior splice or drop).
    pub lateness: u64,
}

impl EventTimeConfig {
    /// Validates the configuration.
    fn validate(&self) -> Result<(), JobError> {
        if self.epoch_len == 0 {
            return Err(JobError::BadConfig("epoch_len must be positive".into()));
        }
        if self.records_per_split == 0 {
            return Err(JobError::BadConfig(
                "records_per_split must be positive".into(),
            ));
        }
        if self.window_epochs == Some(0) {
            return Err(JobError::BadConfig(
                "a window must hold at least one epoch".into(),
            ));
        }
        Ok(())
    }
}

/// One structural change an [`EventFeeder`] applied to its wrapped job,
/// reported through the optional journal
/// ([`EventFeeder::enable_journal`]). Two-input operators (slider-join's
/// `JoinedJob`) consume these to learn exactly which records entered and
/// left the window — the deltas they probe the opposite side's index with
/// — without re-deriving the feeder's close/evict/splice decisions.
///
/// Events are appended in application order; that order is a valid
/// sequential maintenance schedule (each event saw every earlier event
/// applied), which is what makes delta joins exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedEvent<R> {
    /// Late records spliced into the interior of still-in-window `epoch`,
    /// sorted by `(time, seq)`.
    LateSplice {
        /// The epoch the records joined.
        epoch: u64,
        /// The admitted records.
        records: Vec<Stamped<R>>,
    },
    /// `epoch` closed as one bulk advance, possibly evicting the oldest
    /// window epoch.
    EpochClosed {
        /// The closed epoch.
        epoch: u64,
        /// Records the close appended, sorted by `(time, seq)`.
        inserted: Vec<Stamped<R>>,
        /// Epoch evicted from the window front, if the window was full.
        evicted_epoch: Option<u64>,
        /// Every record the evicted epoch held (close-time records plus
        /// any late splices it absorbed).
        evicted: Vec<Stamped<R>>,
    },
    /// A still-in-window epoch was retracted ([`EventFeeder::retract_epoch`]).
    Retracted {
        /// The retracted epoch.
        epoch: u64,
        /// Every record it held.
        records: Vec<Stamped<R>>,
    },
}

/// Journal state: the pending event log plus a per-epoch copy of every
/// record still inside the window (the source of `evicted` / `records`
/// payloads above). Memory is bounded by the window size.
#[derive(Debug, Clone)]
struct Journal<R> {
    events: Vec<FeedEvent<R>>,
    retained: BTreeMap<u64, Vec<Stamped<R>>>,
}

impl<R> Journal<R> {
    fn new() -> Self {
        Journal {
            events: Vec::new(),
            retained: BTreeMap::new(),
        }
    }
}

/// Counters describing an [`EventFeeder`]'s late-data handling. All fields
/// are determined by the ingested records' stamps and the flush chunking —
/// never by thread count or wall-clock timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventTimeStats {
    /// Records accepted into the reorder buffer or the late path.
    pub ingested: u64,
    /// Late records admitted into a still-in-window epoch via an interior
    /// splice.
    pub late_admitted: u64,
    /// Late records dropped because their epoch already left the window.
    pub late_dropped: u64,
    /// Epochs closed (empty gap epochs included).
    pub epochs_closed: u64,
    /// Epochs evicted from the front of a full window.
    pub epochs_evicted: u64,
    /// Interior splice runs executed (late insertions and retractions).
    pub splice_runs: u64,
}

/// One closed epoch still inside the window.
#[derive(Debug, Clone, Copy)]
struct WindowEpoch {
    epoch: u64,
    splits: usize,
}

/// Deep checkpoint of an [`EventFeeder`]: the wrapped job's
/// [`JobCheckpoint`] plus all event-time bookkeeping — the reorder buffer,
/// queued late records, closed-epoch window map, watermark inputs, split-id
/// counter and stats. Like a job checkpoint it is a value: restoring
/// borrows it, so one capture can seed any number of resumed twins.
pub struct FeederCheckpoint<A: MapReduceApp> {
    job: JobCheckpoint<A>,
    config: EventTimeConfig,
    pending: BTreeMap<u64, Vec<Stamped<A::Input>>>,
    late: BTreeMap<u64, Vec<Stamped<A::Input>>>,
    window: VecDeque<WindowEpoch>,
    next_open_epoch: u64,
    max_time: Option<u64>,
    next_split_id: u64,
    stats: EventTimeStats,
    journal: Option<Journal<A::Input>>,
}

impl<A: MapReduceApp> FeederCheckpoint<A> {
    /// The wrapped job's checkpoint.
    #[must_use]
    pub fn job(&self) -> &JobCheckpoint<A> {
        &self.job
    }

    /// Records captured in still-open epochs (the reorder buffer).
    #[must_use]
    pub fn buffered_records(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// The captured late-data counters.
    #[must_use]
    pub fn stats(&self) -> EventTimeStats {
        self.stats
    }
}

impl<A: MapReduceApp> Clone for FeederCheckpoint<A> {
    fn clone(&self) -> Self {
        FeederCheckpoint {
            job: self.job.clone(),
            config: self.config,
            pending: self.pending.clone(),
            late: self.late.clone(),
            window: self.window.clone(),
            next_open_epoch: self.next_open_epoch,
            max_time: self.max_time,
            next_split_id: self.next_split_id,
            stats: self.stats,
            journal: self.journal.clone(),
        }
    }
}

/// Feeds an event-time stream into a windowed job: reorder buffering up to
/// the watermark, bulk epoch closes, and late-record splices. See the
/// module docs for the semantics.
#[derive(Debug)]
pub struct EventFeeder<A: MapReduceApp> {
    job: WindowedJob<A>,
    config: EventTimeConfig,
    /// Reorder buffer: records of still-open epochs, keyed by epoch.
    pending: BTreeMap<u64, Vec<Stamped<A::Input>>>,
    /// Late records awaiting their interior splice, keyed by (in-window)
    /// epoch.
    late: BTreeMap<u64, Vec<Stamped<A::Input>>>,
    /// Closed epochs currently in the window, oldest first.
    window: VecDeque<WindowEpoch>,
    /// All epochs below this index are closed.
    next_open_epoch: u64,
    /// Highest event time ingested, if any.
    max_time: Option<u64>,
    next_split_id: u64,
    stats: EventTimeStats,
    /// Optional structural-change journal (see
    /// [`EventFeeder::enable_journal`]). `None` = disabled, zero cost.
    journal: Option<Journal<A::Input>>,
}

impl<A: MapReduceApp> EventFeeder<A> {
    /// Wraps `job` with event-time ingestion under `config`.
    ///
    /// # Errors
    ///
    /// [`JobError::BadConfig`] for a zero epoch length, zero split size, or
    /// a zero-epoch window.
    pub fn new(job: WindowedJob<A>, config: EventTimeConfig) -> Result<Self, JobError> {
        config.validate()?;
        Ok(EventFeeder {
            job,
            config,
            pending: BTreeMap::new(),
            late: BTreeMap::new(),
            window: VecDeque::new(),
            next_open_epoch: 0,
            max_time: None,
            next_split_id: 0,
            stats: EventTimeStats::default(),
            journal: None,
        })
    }

    /// Turns on the structural-change journal: from now on every epoch
    /// close, late splice and retraction appends a [`FeedEvent`] (drained
    /// with [`EventFeeder::take_events`]), and the feeder retains a copy of
    /// every in-window record so eviction events can report exactly which
    /// records left. Enable *before* the first flush — epochs closed
    /// earlier were not retained and would report empty evictions.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Journal::new());
        }
    }

    /// Whether the journal is recording.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drains the journal's pending events (empty when disabled).
    pub fn take_events(&mut self) -> Vec<FeedEvent<A::Input>> {
        self.journal
            .as_mut()
            .map(|j| std::mem::take(&mut j.events))
            .unwrap_or_default()
    }

    /// Every record currently inside the window, oldest epoch first and
    /// sorted within each epoch. `None` when the journal is disabled.
    pub fn retained_records(&self) -> Option<Vec<&Stamped<A::Input>>> {
        self.journal
            .as_ref()
            .map(|j| j.retained.values().flatten().collect())
    }

    /// Buffers `records` without running the job: on-time records join
    /// their epoch in the reorder buffer; records below the watermark whose
    /// epoch is still in the window queue for a late splice; anything older
    /// is dropped and counted. Call [`EventFeeder::flush`] to apply.
    pub fn ingest(&mut self, records: impl IntoIterator<Item = Stamped<A::Input>>) {
        for record in records {
            self.stats.ingested += 1;
            self.max_time = Some(self.max_time.map_or(record.time, |m| m.max(record.time)));
            let epoch = record.epoch(self.config.epoch_len);
            if epoch >= self.next_open_epoch {
                self.pending.entry(epoch).or_default().push(record);
            } else if self.window.iter().any(|w| w.epoch == epoch) {
                self.stats.late_admitted += 1;
                self.late.entry(epoch).or_default().push(record);
            } else {
                self.stats.late_dropped += 1;
            }
        }
    }

    /// Applies everything the stream has made ready: queued late records
    /// are spliced into their epochs' interior positions, then every epoch
    /// the watermark has passed closes as one bulk advance (evicting the
    /// oldest epoch once the window is full). Returns the stats of every
    /// run executed, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`JobError`]; runs already executed remain
    /// applied (a flush is not atomic), and their bookkeeping is intact.
    pub fn flush(&mut self) -> Result<Vec<RunStats>, JobError> {
        self.flush_capped(u64::MAX)
    }

    /// Like [`EventFeeder::flush`], but closes only epochs that *both* this
    /// feeder's own watermark and `watermark_cap` have passed. Queued late
    /// records still splice unconditionally (their epochs already closed).
    ///
    /// This is the joint-watermark primitive: a two-input operator calls it
    /// with the minimum of its sides' watermarks, so neither side's window
    /// advances past what the slower stream has confirmed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`JobError`] (see [`EventFeeder::flush`]).
    pub fn flush_bounded(&mut self, watermark_cap: u64) -> Result<Vec<RunStats>, JobError> {
        self.flush_capped(watermark_cap)
    }

    fn flush_capped(&mut self, watermark_cap: u64) -> Result<Vec<RunStats>, JobError> {
        let mut runs = Vec::new();
        self.apply_late(&mut runs)?;
        let Some(watermark) = self.watermark().map(|w| w.min(watermark_cap)) else {
            return Ok(runs);
        };
        // First epoch the watermark has NOT fully passed: `e` is ripe
        // exactly when `(e + 1) * epoch_len <= watermark`.
        let horizon = watermark / self.config.epoch_len;
        while self.next_open_epoch < horizon {
            let epoch = self.next_open_epoch;
            if !self.pending.contains_key(&epoch) && self.window.is_empty() {
                // Dead region: nothing to add and nothing a close could
                // evict. Fast-forward to the next epoch with records (or
                // the horizon) instead of burning one iteration per epoch
                // of a large time gap.
                let jump = self
                    .pending
                    .keys()
                    .next()
                    .map_or(horizon, |&next| next.min(horizon));
                self.stats.epochs_closed += jump - epoch;
                self.next_open_epoch = jump;
                continue;
            }
            self.close_epoch(epoch, &mut runs)?;
        }
        Ok(runs)
    }

    /// Force-closes every buffered epoch regardless of the watermark (end
    /// of stream), after applying queued late records.
    ///
    /// # Errors
    ///
    /// Propagates the first [`JobError`] (see [`EventFeeder::flush`]).
    pub fn close_all(&mut self) -> Result<Vec<RunStats>, JobError> {
        let mut runs = Vec::new();
        self.apply_late(&mut runs)?;
        while let Some((&epoch, _)) = self.pending.iter().next() {
            // Empty gap epochs between closed data need no runs here: with
            // no further stream there is nothing left to age out.
            self.stats.epochs_closed += epoch.saturating_sub(self.next_open_epoch);
            self.next_open_epoch = self.next_open_epoch.max(epoch);
            self.close_epoch(epoch, &mut runs)?;
        }
        Ok(runs)
    }

    /// Retracts a closed, still-in-window epoch: its splits leave the
    /// window's interior in one bulk splice
    /// ([`WindowedJob::evict_splits_range`]). Returns `Ok(None)` if the
    /// epoch is not in the window (nothing to retract), or if it
    /// contributed no splits.
    ///
    /// # Errors
    ///
    /// Propagates [`JobError`] from the underlying job (e.g. a mode with no
    /// interior evictions).
    pub fn retract_epoch(&mut self, epoch: u64) -> Result<Option<RunStats>, JobError> {
        let Some(index) = self.window.iter().position(|w| w.epoch == epoch) else {
            return Ok(None);
        };
        let at: usize = self.window.iter().take(index).map(|w| w.splits).sum();
        let count = self.window[index].splits;
        let stats = if count > 0 {
            let stats = self.job.evict_splits_range(at, count)?;
            self.stats.splice_runs += 1;
            Some(stats)
        } else {
            None
        };
        self.window.remove(index);
        // Anything queued as late for the retracted epoch is now homeless.
        if let Some(dropped) = self.late.remove(&epoch) {
            self.stats.late_admitted -= dropped.len() as u64;
            self.stats.late_dropped += dropped.len() as u64;
        }
        if let Some(journal) = self.journal.as_mut() {
            let records = journal.retained.remove(&epoch).unwrap_or_default();
            journal.events.push(FeedEvent::Retracted { epoch, records });
        }
        Ok(stats)
    }

    /// The current watermark (highest event time seen minus the lateness
    /// bound), or `None` before the first record.
    pub fn watermark(&self) -> Option<u64> {
        self.max_time
            .map(|t| t.saturating_sub(self.config.lateness))
    }

    /// The job's current output.
    pub fn output(&self) -> &BTreeMap<A::Key, A::Output> {
        self.job.output()
    }

    /// This feeder's late-data counters.
    pub fn stats(&self) -> EventTimeStats {
        self.stats
    }

    /// Closed epochs currently in the window, oldest first.
    pub fn window_epochs(&self) -> Vec<u64> {
        self.window.iter().map(|w| w.epoch).collect()
    }

    /// Records buffered in still-open epochs.
    pub fn buffered_records(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Captures a deep checkpoint of the feeder and its wrapped job: see
    /// [`FeederCheckpoint`] and [`WindowedJob::checkpoint`].
    #[must_use]
    pub fn checkpoint(&self) -> FeederCheckpoint<A> {
        FeederCheckpoint {
            job: self.job.checkpoint(),
            config: self.config,
            pending: self.pending.clone(),
            late: self.late.clone(),
            window: self.window.clone(),
            next_open_epoch: self.next_open_epoch,
            max_time: self.max_time,
            next_split_id: self.next_split_id,
            stats: self.stats,
            journal: self.journal.clone(),
        }
    }

    /// Reconstructs a feeder from `checkpoint`, attaching its job to
    /// `shared` infrastructure — see [`WindowedJob::restore_with_shared`]
    /// for what the host must restore first (cache contents, namespace
    /// watermark).
    ///
    /// # Errors
    ///
    /// Propagates [`JobError::BadConfig`] from the job restore.
    pub fn restore_with_shared(
        checkpoint: &FeederCheckpoint<A>,
        shared: &EngineShared,
    ) -> Result<Self, JobError> {
        let job = WindowedJob::restore_with_shared(&checkpoint.job, shared)?;
        Ok(EventFeeder {
            job,
            config: checkpoint.config,
            pending: checkpoint.pending.clone(),
            late: checkpoint.late.clone(),
            window: checkpoint.window.clone(),
            next_open_epoch: checkpoint.next_open_epoch,
            max_time: checkpoint.max_time,
            next_split_id: checkpoint.next_split_id,
            stats: checkpoint.stats,
            journal: checkpoint.journal.clone(),
        })
    }

    /// Borrows the underlying job.
    pub fn job(&self) -> &WindowedJob<A> {
        &self.job
    }

    /// Consumes the feeder, returning the job.
    pub fn into_job(self) -> WindowedJob<A> {
        self.job
    }

    /// Splices every queued late record into its epoch's interior
    /// position, in epoch order. The records land at the *end* of their
    /// epoch's split range, sorted by `(time, seq)` — for commutative
    /// combiners (every contraction-tree mode but the strawman's
    /// non-commutative uses) this reproduces the output of the stream that
    /// never lost them.
    fn apply_late(&mut self, runs: &mut Vec<RunStats>) -> Result<(), JobError> {
        while let Some((epoch, mut records)) = self.late.pop_first() {
            records.sort_by_key(|r| (r.time, r.seq));
            let journal_copy = self.journal.is_some().then(|| records.clone());
            let inputs: Vec<A::Input> = records.into_iter().map(|r| r.record).collect();
            let splits = make_splits(self.next_split_id, inputs, self.config.records_per_split);
            let added = splits.len();
            // The splice point: right after the epoch's existing splits.
            let at: usize = self
                .window
                .iter()
                .take_while(|w| w.epoch <= epoch)
                .map(|w| w.splits)
                .sum();
            runs.push(self.job.insert_splits_at(at, splits)?);
            self.next_split_id += added as u64;
            self.stats.splice_runs += 1;
            if let Some(w) = self.window.iter_mut().find(|w| w.epoch == epoch) {
                w.splits += added;
            }
            if let (Some(journal), Some(records)) = (self.journal.as_mut(), journal_copy) {
                journal
                    .retained
                    .entry(epoch)
                    .or_default()
                    .extend(records.iter().cloned());
                journal
                    .events
                    .push(FeedEvent::LateSplice { epoch, records });
            }
        }
        Ok(())
    }

    /// Closes `epoch` as one bulk advance: its records (sorted by
    /// `(time, seq)`) become splits, and the oldest epoch leaves a full
    /// window. Runs with nothing to add *and* nothing to evict are elided.
    fn close_epoch(&mut self, epoch: u64, runs: &mut Vec<RunStats>) -> Result<(), JobError> {
        let mut records = self.pending.remove(&epoch).unwrap_or_default();
        records.sort_by_key(|r| (r.time, r.seq));
        let journal_copy = self.journal.is_some().then(|| records.clone());
        let inputs: Vec<A::Input> = records.into_iter().map(|r| r.record).collect();
        let splits = make_splits(self.next_split_id, inputs, self.config.records_per_split);
        let added = splits.len();
        let evict = matches!(self.config.window_epochs, Some(n) if self.window.len() >= n);
        let remove = if evict {
            self.window
                .front()
                .map(|w| w.splits)
                .ok_or(JobError::EmptyWindow)?
        } else {
            0
        };
        let evicted_epoch = if evict {
            self.window.front().map(|w| w.epoch)
        } else {
            None
        };
        if remove > 0 || added > 0 {
            runs.push(self.job.advance(remove, splits)?);
        }
        // Mutate bookkeeping only after the job accepted the slide.
        if evict {
            self.window.pop_front();
            self.stats.epochs_evicted += 1;
        }
        if let (Some(journal), Some(inserted)) = (self.journal.as_mut(), journal_copy) {
            let evicted = evicted_epoch
                .map(|e| journal.retained.remove(&e).unwrap_or_default())
                .unwrap_or_default();
            journal.retained.insert(epoch, inserted.clone());
            journal.events.push(FeedEvent::EpochClosed {
                epoch,
                inserted,
                evicted_epoch,
                evicted,
            });
        }
        self.window.push_back(WindowEpoch {
            epoch,
            splits: added,
        });
        self.next_split_id += added as u64;
        self.next_open_epoch = epoch + 1;
        self.stats.epochs_closed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::{ExecMode, JobConfig};

    struct WordCount;
    impl MapReduceApp for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
        fn combine(&self, _k: &String, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn reduce(&self, _k: &String, parts: &[&u64]) -> u64 {
            parts.iter().copied().sum()
        }
    }

    fn feeder(mode: ExecMode, config: EventTimeConfig) -> EventFeeder<WordCount> {
        let job = WindowedJob::new(WordCount, JobConfig::new(mode).with_partitions(2)).unwrap();
        EventFeeder::new(job, config).unwrap()
    }

    fn config() -> EventTimeConfig {
        EventTimeConfig {
            epoch_len: 10,
            records_per_split: 2,
            window_epochs: Some(3),
            lateness: 5,
        }
    }

    fn stamped(time: u64, seq: u64, word: &str) -> Stamped<String> {
        Stamped::new(time, seq, word.to_string())
    }

    #[test]
    fn bad_configs_are_rejected() {
        let job =
            || WindowedJob::new(WordCount, JobConfig::new(ExecMode::slider_folding())).unwrap();
        for bad in [
            EventTimeConfig {
                epoch_len: 0,
                ..config()
            },
            EventTimeConfig {
                records_per_split: 0,
                ..config()
            },
            EventTimeConfig {
                window_epochs: Some(0),
                ..config()
            },
        ] {
            assert!(matches!(
                EventFeeder::new(job(), bad),
                Err(JobError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn disorder_within_the_bound_matches_the_sorted_twin_exactly() {
        // Two chunks whose records are shuffled within the lateness bound.
        let disordered = [
            vec![
                stamped(3, 0, "a"),
                stamped(1, 1, "b"),
                stamped(12, 2, "c"),
                stamped(9, 3, "a"),
            ],
            vec![
                stamped(17, 4, "d"),
                stamped(14, 5, "b"),
                stamped(23, 6, "e"),
                stamped(21, 7, "a"),
            ],
        ];
        let mut sorted = disordered.clone();
        for chunk in &mut sorted {
            chunk.sort_by_key(|x| (x.time, x.seq));
        }

        let run = |chunks: &[Vec<Stamped<String>>]| {
            let mut f = feeder(ExecMode::slider_folding(), config());
            let mut all_runs = Vec::new();
            for chunk in chunks {
                f.ingest(chunk.iter().cloned());
                all_runs.extend(f.flush().unwrap());
            }
            all_runs.extend(f.close_all().unwrap());
            (f.output().clone(), format!("{all_runs:?}"), f.stats())
        };
        let (out_d, runs_d, stats_d) = run(&disordered);
        let (out_s, runs_s, stats_s) = run(&sorted);
        assert_eq!(out_d, out_s);
        assert_eq!(runs_d, runs_s, "run stats must be bit-identical");
        assert_eq!(stats_d, stats_s);
        assert_eq!(stats_d.late_admitted, 0, "in-bound disorder is never late");
        assert_eq!(stats_d.late_dropped, 0);
    }

    #[test]
    fn watermark_holds_epochs_open_until_the_bound_passes() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        // Epoch 0 complete, but the watermark (14 - 5 = 9) has not passed
        // its end (10): nothing closes.
        f.ingest([stamped(2, 0, "a"), stamped(14, 1, "b")]);
        assert!(f.flush().unwrap().is_empty());
        assert_eq!(f.buffered_records(), 2);
        assert!(f.output().is_empty());

        // One more record pushes the watermark to 16: epoch 0 closes,
        // epoch 1 stays open.
        f.ingest([stamped(21, 2, "c")]);
        let runs = f.flush().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(f.output().get("a"), Some(&1));
        assert_eq!(f.output().get("b"), None, "epoch 1 is still open");
        assert_eq!(f.window_epochs(), vec![0]);
    }

    #[test]
    fn late_records_splice_into_their_epoch() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        f.ingest([
            stamped(2, 0, "a"),
            stamped(12, 1, "b"),
            stamped(22, 2, "c"),
            stamped(35, 3, "d"),
        ]);
        f.flush().unwrap();
        assert_eq!(f.window_epochs(), vec![0, 1, 2]);

        // Time 4 is far below the watermark (30) but epoch 0 is still in
        // the window: the record is admitted through an interior splice.
        f.ingest([stamped(4, 4, "z")]);
        let runs = f.flush().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(f.output().get("z"), Some(&1));
        assert_eq!(f.stats().late_admitted, 1);
        assert_eq!(f.stats().splice_runs, 1);

        // The admitted record ages out with its epoch, not later: closing
        // epoch 3 (window of 3) evicts epoch 0 and "z" with it.
        f.ingest([stamped(47, 5, "e")]);
        f.flush().unwrap();
        assert_eq!(f.window_epochs(), vec![1, 2, 3]);
        assert_eq!(f.output().get("z"), None);
        assert_eq!(f.stats().epochs_evicted, 1);
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        for (t, s, w) in [(5, 0, "a"), (15, 1, "b"), (25, 2, "c"), (35, 3, "d")] {
            f.ingest([stamped(t, s, w)]);
        }
        f.ingest([stamped(49, 4, "e")]);
        f.flush().unwrap();
        // Window holds epochs [1, 2, 3]; epoch 0 is gone.
        assert_eq!(f.window_epochs(), vec![1, 2, 3]);
        f.ingest([stamped(3, 5, "x")]);
        f.flush().unwrap();
        assert_eq!(f.output().get("x"), None);
        assert_eq!(f.stats().late_dropped, 1);
    }

    #[test]
    fn bursty_gaps_fast_forward_without_runs() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        f.ingest([stamped(2, 0, "a"), stamped(12, 1, "b"), stamped(22, 2, "c")]);
        // Watermark 17: only epoch 0 closes here; 1 and 2 stay buffered.
        assert_eq!(f.flush().unwrap().len(), 1);
        // A huge time jump: epochs 1 and 2 close (two runs), then the gap's
        // first three empty epochs age the window out (three eviction runs),
        // and the remaining dead region fast-forwards with no further runs.
        f.ingest([stamped(1_000_015, 3, "z")]);
        let runs = f.flush().unwrap();
        assert_eq!(runs.len(), 5, "2 data closes + 3 evictions, then no runs");
        assert!(f.output().is_empty());
        assert_eq!(f.buffered_records(), 1, "z's epoch is still open");
        let closed = f.stats().epochs_closed;
        assert!(closed >= 100_000, "gap epochs counted closed: {closed}");
    }

    #[test]
    fn retract_epoch_evicts_its_interior_range() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        f.ingest([
            stamped(2, 0, "a"),
            stamped(12, 1, "b"),
            stamped(22, 2, "c"),
            stamped(35, 3, "d"),
        ]);
        f.flush().unwrap();
        assert_eq!(f.window_epochs(), vec![0, 1, 2]);

        // Retract the middle epoch: "b" vanishes, neighbours survive.
        let stats = f.retract_epoch(1).unwrap();
        assert!(stats.is_some());
        assert_eq!(f.window_epochs(), vec![0, 2]);
        assert_eq!(f.output().get("b"), None);
        assert_eq!(f.output().get("a"), Some(&1));
        assert_eq!(f.output().get("c"), Some(&1));
        assert_eq!(f.stats().splice_runs, 1);

        // Unknown epochs are a quiet no-op.
        assert!(f.retract_epoch(99).unwrap().is_none());
    }

    #[test]
    fn zero_lateness_drops_every_straggler_and_counts_reconcile() {
        // Strict watermark: with `lateness = 0` the watermark IS the
        // highest event time seen, so an epoch closes the instant the
        // stream touches the next one, and a one-epoch window means every
        // record arriving behind the watermark's epoch finds its epoch
        // already evicted — all stragglers drop, none splice.
        let cfg = EventTimeConfig {
            epoch_len: 10,
            records_per_split: 2,
            window_epochs: Some(1),
            lateness: 0,
        };
        let mut f = feeder(ExecMode::slider_folding(), cfg);
        f.ingest([
            stamped(5, 0, "a"),
            stamped(15, 1, "b"),
            stamped(25, 2, "c a"),
        ]);
        f.flush().unwrap();
        assert_eq!(f.watermark(), Some(25));
        assert_eq!(f.window_epochs(), vec![1], "epoch 0 closed and evicted");

        // Stragglers into closed epochs: both drop (epoch 0 evicted,
        // epoch 1 evicted by the close of epoch 2 below — here epoch 1 is
        // still windowed, so target epoch 0 twice to stay strict).
        f.ingest([stamped(3, 3, "x"), stamped(8, 4, "x")]);
        // In-epoch disorder is NOT lateness: 31 then 38 arrive out of
        // order inside the still-open epoch 3 and are buffered, sorted at
        // close.
        f.ingest([stamped(38, 5, "d"), stamped(31, 6, "a")]);
        f.flush().unwrap();

        let stats = f.stats();
        assert_eq!(stats.ingested, 7);
        assert_eq!(stats.late_admitted, 0, "nothing splices at lateness 0");
        assert_eq!(stats.late_dropped, 2);
        assert_eq!(stats.splice_runs, 0);
        // Every ingested record is accounted for: dropped, still buffered
        // in the open epoch, or inside a closed epoch's splits.
        let closed_records = 3; // epochs 0..=2, one record each
        assert_eq!(
            stats.ingested,
            stats.late_dropped + f.buffered_records() as u64 + closed_records
        );
        assert_eq!(f.output().get("x"), None, "dropped records never surface");

        // The sorted twin of the *surviving* records is bit-identical.
        let mut twin = feeder(ExecMode::slider_folding(), cfg);
        twin.ingest([
            stamped(5, 0, "a"),
            stamped(15, 1, "b"),
            stamped(25, 2, "c a"),
            stamped(31, 6, "a"),
            stamped(38, 5, "d"),
        ]);
        twin.flush().unwrap();
        f.close_all().unwrap();
        twin.close_all().unwrap();
        assert_eq!(f.output(), twin.output());
        assert_eq!(f.window_epochs(), twin.window_epochs());
        assert_eq!(f.stats().epochs_closed, twin.stats().epochs_closed);
        assert_eq!(f.stats().epochs_evicted, twin.stats().epochs_evicted);
    }

    #[test]
    fn checkpoint_restore_twin_is_bit_identical_mid_stream() {
        // Drive a feeder halfway, checkpoint, then continue both the
        // original and a restored twin through the same suffix: outputs,
        // run stats and event-time stats must be bit-identical — including
        // a late record spliced *after* the checkpoint into an epoch closed
        // *before* it, which only works if the window map survived.
        let shared = EngineShared::builder().build();
        let job = WindowedJob::with_shared(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
            &shared,
        )
        .unwrap();
        let mut f = EventFeeder::new(job, config()).unwrap();
        f.ingest([
            stamped(2, 0, "a"),
            stamped(12, 1, "b"),
            stamped(22, 2, "c"),
            stamped(35, 3, "d"),
        ]);
        f.flush().unwrap();

        let cp = f.checkpoint();
        assert_eq!(cp.job().window_splits(), f.job().window_splits());
        let mut twin = EventFeeder::restore_with_shared(&cp, &shared).unwrap();
        // The checkpoint is a value: a second restore must also succeed.
        assert!(EventFeeder::restore_with_shared(&cp, &shared).is_ok());

        let suffix: Vec<Stamped<String>> = vec![
            stamped(4, 4, "z"), // late splice into epoch 0
            stamped(47, 5, "e"),
            stamped(58, 6, "f"),
        ];
        let drive = |f: &mut EventFeeder<WordCount>| {
            let mut runs = Vec::new();
            for r in &suffix {
                f.ingest([r.clone()]);
                runs.extend(f.flush().unwrap());
            }
            runs.extend(f.close_all().unwrap());
            (f.output().clone(), format!("{runs:?}"), f.stats())
        };
        let (out_a, runs_a, stats_a) = drive(&mut f);
        let (out_b, runs_b, stats_b) = drive(&mut twin);
        assert_eq!(out_a, out_b);
        assert_eq!(runs_a, runs_b, "restored twin must meter identically");
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn flush_bounded_holds_epochs_back_until_the_cap_passes() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        f.ingest([
            stamped(2, 0, "a"),
            stamped(12, 1, "b"),
            stamped(25, 2, "c"),
            stamped(38, 3, "d"),
        ]);
        // Own watermark is 33, but a cap of 9 keeps every epoch open.
        assert!(f.flush_bounded(9).unwrap().is_empty());
        assert!(f.output().is_empty());
        // Cap 20 releases epochs 0 and 1 only.
        assert_eq!(f.flush_bounded(20).unwrap().len(), 2);
        assert_eq!(f.window_epochs(), vec![0, 1]);
        // Uncapped flush catches up to the own watermark.
        assert_eq!(f.flush().unwrap().len(), 1);
        assert_eq!(f.window_epochs(), vec![0, 1, 2]);
    }

    #[test]
    fn journal_reports_closes_evictions_splices_and_retractions() {
        let mut f = feeder(ExecMode::slider_folding(), config());
        f.enable_journal();
        assert!(f.journal_enabled());
        f.ingest([
            stamped(2, 0, "a"),
            stamped(12, 1, "b"),
            stamped(22, 2, "c"),
            stamped(35, 3, "d"),
        ]);
        f.flush().unwrap();
        let events = f.take_events();
        assert_eq!(events.len(), 3, "three epoch closes");
        assert!(matches!(
            &events[0],
            FeedEvent::EpochClosed { epoch: 0, inserted, evicted_epoch: None, .. }
                if inserted.len() == 1 && inserted[0].record == "a"
        ));
        assert!(f.take_events().is_empty(), "events drain once");
        let retained: Vec<String> = f
            .retained_records()
            .unwrap()
            .iter()
            .map(|s| s.record.clone())
            .collect();
        assert_eq!(retained, ["a", "b", "c"]);

        // A late splice lands in epoch 0's retained set and is reported.
        f.ingest([stamped(4, 4, "z")]);
        f.flush().unwrap();
        let events = f.take_events();
        assert!(matches!(
            &events[..],
            [FeedEvent::LateSplice { epoch: 0, records }] if records[0].record == "z"
        ));

        // Closing epoch 3 evicts epoch 0 — including the spliced record.
        f.ingest([stamped(47, 5, "e")]);
        f.flush().unwrap();
        let events = f.take_events();
        match &events[..] {
            [FeedEvent::EpochClosed {
                epoch: 3,
                evicted_epoch: Some(0),
                evicted,
                ..
            }] => {
                let got: Vec<&str> = evicted.iter().map(|s| s.record.as_str()).collect();
                assert_eq!(got, ["a", "z"], "late splice ages out with its epoch");
            }
            other => panic!("unexpected events: {other:?}"),
        }

        // Retraction reports the epoch's records and drops them from the
        // retained set.
        f.retract_epoch(2).unwrap();
        let events = f.take_events();
        assert!(matches!(
            &events[..],
            [FeedEvent::Retracted { epoch: 2, records }] if records[0].record == "c"
        ));
        let retained: Vec<String> = f
            .retained_records()
            .unwrap()
            .iter()
            .map(|s| s.record.clone())
            .collect();
        assert_eq!(retained, ["b", "d"]);
    }

    #[test]
    fn journal_survives_checkpoint_restore() {
        let shared = EngineShared::builder().build();
        let job = WindowedJob::with_shared(
            WordCount,
            JobConfig::new(ExecMode::slider_folding()).with_partitions(2),
            &shared,
        )
        .unwrap();
        let mut f = EventFeeder::new(job, config()).unwrap();
        f.enable_journal();
        f.ingest([stamped(2, 0, "a"), stamped(12, 1, "b"), stamped(35, 2, "c")]);
        f.flush().unwrap();
        f.take_events();

        let cp = f.checkpoint();
        let mut twin = EventFeeder::restore_with_shared(&cp, &shared).unwrap();
        assert!(twin.journal_enabled());
        // Both continue; eviction payloads must match, which requires the
        // retained map to have survived the restore.
        for g in [&mut f, &mut twin] {
            g.ingest([stamped(47, 3, "d")]);
            g.flush().unwrap();
        }
        assert_eq!(f.take_events(), twin.take_events());
    }

    #[test]
    fn append_only_event_windows_admit_all_late_records() {
        let cfg = EventTimeConfig {
            window_epochs: None,
            ..config()
        };
        let mut f = feeder(ExecMode::slider_coalescing(false), cfg);
        f.ingest([stamped(5, 0, "a"), stamped(15, 1, "b"), stamped(45, 2, "c")]);
        f.flush().unwrap();
        // Epochs never leave an append-only window, so even a very late
        // record finds its epoch.
        f.ingest([stamped(1, 3, "z")]);
        f.flush().unwrap();
        assert_eq!(f.output().get("z"), Some(&1));
        assert_eq!(f.stats().late_dropped, 0);
        f.close_all().unwrap();
        assert_eq!(f.output().get("c"), Some(&1));
    }
}
