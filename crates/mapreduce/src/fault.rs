//! Deterministic run-level fault plans for windowed jobs.
//!
//! A [`JobFaultPlan`] scripts every fault the engine may encounter across a
//! job's lifetime, keyed by run index: simulated-machine crashes and
//! stragglers (forwarded to [`slider_cluster::simulate_with_faults`] for
//! that run's schedule), memoization-cache node failures/recoveries, and
//! forced memo-state loss per reduce partition. Because the plan is pure
//! data and every consumer applies it at a fixed point of the run loop, a
//! `(workload, plan)` pair always yields the same recovery behaviour — and
//! the recovery invariant holds: outputs are bit-identical to the
//! fault-free run, only work/time metrics may differ.

use slider_cluster::FaultPlan;

/// A simulated machine crash during one run's foreground schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMachineCrash {
    /// Run index (0 = initial run) whose schedule the crash hits.
    pub run: u64,
    /// Machine index within the simulated cluster.
    pub machine: usize,
    /// Simulated time of the crash within the run, in seconds.
    pub at_seconds: f64,
}

/// A straggling machine during one run's foreground schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobStraggler {
    /// Run index whose schedule the slowdown hits.
    pub run: u64,
    /// Machine index within the simulated cluster.
    pub machine: usize,
    /// Speed multiplier in `(0, 1)`; e.g. `0.1` = 10× slower.
    pub factor: f64,
}

/// A memoization-cache node event at the start of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheNodeEvent {
    /// Run index before which the event takes effect.
    pub run: u64,
    /// Cache node index.
    pub node: usize,
}

/// Silent corruption of one cached object's persistent copy before a run.
///
/// The copy is flipped on disk; the cache's checksum verification must
/// detect it on the next read, scrub, or rebuild that touches it — a
/// corrupt copy is never served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCorruption {
    /// Run index before which the corruption lands.
    pub run: u64,
    /// Reduce partition whose cached object is hit (the engine maps
    /// partitions to object ids one-to-one).
    pub partition: usize,
    /// Cache node whose persistent copy is flipped.
    pub node: usize,
}

/// Forced loss of memoized contraction state before one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoLoss {
    /// Run index before which the state disappears.
    pub run: u64,
    /// Reduce partitions whose trees (and cached objects) are lost.
    pub partitions: Vec<usize>,
}

/// Scripted faults for a windowed job, keyed by run index.
///
/// Build one with the fluent helpers and pass it via
/// [`crate::JobConfig::with_faults`]; [`JobFaultPlan::seeded`] derives a
/// reproducible random plan from a seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobFaultPlan {
    /// Machine crashes, forwarded to the cluster simulator.
    pub crashes: Vec<JobMachineCrash>,
    /// Machine slowdowns, forwarded to the cluster simulator.
    pub stragglers: Vec<JobStraggler>,
    /// Cache nodes whose memory tier is lost before a run.
    pub cache_failures: Vec<CacheNodeEvent>,
    /// Cache nodes brought back before a run.
    pub cache_recoveries: Vec<CacheNodeEvent>,
    /// Memoized partition state forcibly dropped before a run.
    pub memo_losses: Vec<MemoLoss>,
    /// Persistent cache copies silently corrupted before a run.
    pub corruptions: Vec<CacheCorruption>,
    /// Runs before which the cache master index is dropped (and rebuilt
    /// from the surviving node inventories).
    pub master_losses: Vec<u64>,
    /// Attempts a simulated task may use before the run is declared lost
    /// (`0` = the cluster default of 3).
    pub max_attempts: u32,
    /// Enable speculative re-execution of stragglers in the simulator.
    pub speculation: bool,
}

impl JobFaultPlan {
    /// An empty plan: behaves exactly like no plan at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.cache_failures.is_empty()
            && self.cache_recoveries.is_empty()
            && self.memo_losses.is_empty()
            && self.corruptions.is_empty()
            && self.master_losses.is_empty()
            && !self.speculation
    }

    /// Adds a machine crash at `at_seconds` into run `run`. Builder-style.
    pub fn crash(mut self, run: u64, machine: usize, at_seconds: f64) -> Self {
        self.crashes.push(JobMachineCrash {
            run,
            machine,
            at_seconds,
        });
        self
    }

    /// Marks `machine` as a straggler for run `run`. Builder-style.
    pub fn slow(mut self, run: u64, machine: usize, factor: f64) -> Self {
        self.stragglers.push(JobStraggler {
            run,
            machine,
            factor,
        });
        self
    }

    /// Fails cache node `node` before run `run`. Builder-style.
    pub fn fail_cache_node(mut self, run: u64, node: usize) -> Self {
        self.cache_failures.push(CacheNodeEvent { run, node });
        self
    }

    /// Recovers cache node `node` before run `run`. Builder-style.
    pub fn recover_cache_node(mut self, run: u64, node: usize) -> Self {
        self.cache_recoveries.push(CacheNodeEvent { run, node });
        self
    }

    /// Drops the memoized state of `partitions` before run `run`.
    /// Builder-style.
    pub fn lose_memo(mut self, run: u64, partitions: Vec<usize>) -> Self {
        self.memo_losses.push(MemoLoss { run, partitions });
        self
    }

    /// Silently corrupts partition `partition`'s cached copy on cache node
    /// `node` before run `run`. Builder-style.
    pub fn corrupt_object(mut self, run: u64, partition: usize, node: usize) -> Self {
        self.corruptions.push(CacheCorruption {
            run,
            partition,
            node,
        });
        self
    }

    /// Drops the cache master index before run `run`; the engine rebuilds
    /// it from the surviving node inventories. Builder-style.
    pub fn lose_master(mut self, run: u64) -> Self {
        self.master_losses.push(run);
        self
    }

    /// Caps simulated task attempts. Builder-style.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Enables speculative execution in the simulator. Builder-style.
    pub fn with_speculation(mut self) -> Self {
        self.speculation = true;
        self
    }

    /// Derives a reproducible random plan from `seed` for a job expected to
    /// span `runs` runs on `machines` simulated machines with `partitions`
    /// reduce partitions. The same arguments always produce the same plan.
    pub fn seeded(seed: u64, runs: u64, machines: usize, partitions: usize) -> Self {
        let mut state = seed;
        let mut plan = JobFaultPlan::default();
        if runs == 0 || machines == 0 || partitions == 0 {
            return plan;
        }
        // At most one crash and one straggler per plan, each in a random
        // run, always sparing machine 0 so work can complete.
        if machines > 1 && next(&mut state).is_multiple_of(2) {
            let run = next(&mut state) % runs;
            let machine = 1 + bounded(next(&mut state), machines - 1);
            let at = 0.5 + (next(&mut state) % 100) as f64 / 10.0;
            plan = plan.crash(run, machine, at);
        }
        if machines > 1 && next(&mut state).is_multiple_of(2) {
            let run = next(&mut state) % runs;
            let machine = 1 + bounded(next(&mut state), machines - 1);
            let factor = 0.2 + 0.6 * (next(&mut state) % 1000) as f64 / 1000.0;
            plan = plan.slow(run, machine, factor);
            if next(&mut state).is_multiple_of(2) {
                plan = plan.with_speculation();
            }
        }
        // Up to two memo losses, never before run 1 (there is nothing to
        // lose ahead of the initial run).
        if runs > 1 {
            for _ in 0..(next(&mut state) % 3) {
                let run = 1 + next(&mut state) % (runs - 1);
                let count = 1 + bounded(next(&mut state), partitions);
                let start = bounded(next(&mut state), partitions);
                let parts: Vec<usize> = (0..count).map(|i| (start + i) % partitions).collect();
                plan = plan.lose_memo(run, parts);
            }
            // A cache-node failure with a later recovery.
            if next(&mut state).is_multiple_of(2) {
                let node = bounded(next(&mut state), partitions.max(2));
                let run = 1 + next(&mut state) % (runs - 1);
                plan = plan.fail_cache_node(run, node);
                if run + 1 < runs {
                    plan = plan.recover_cache_node(run + 1, node);
                }
            }
        }
        plan
    }

    /// The cluster-level fault plan for run `run`: that run's crashes and
    /// slowdowns under this plan's retry/speculation settings. Trivial (and
    /// therefore bit-identical to fault-free simulation) for runs the plan
    /// does not touch.
    pub fn cluster_plan_for_run(&self, run: u64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for c in self.crashes.iter().filter(|c| c.run == run) {
            plan = plan.crash(c.machine, c.at_seconds);
        }
        for s in self.stragglers.iter().filter(|s| s.run == run) {
            plan = plan.slow(s.machine, s.factor);
        }
        if self.max_attempts > 0 {
            plan = plan.with_max_attempts(self.max_attempts);
        }
        if self.speculation {
            plan = plan.with_speculation();
        }
        plan
    }

    /// Partitions whose memoized state is lost before run `run`, sorted and
    /// deduplicated.
    pub fn lost_partitions(&self, run: u64) -> Vec<usize> {
        let mut parts: Vec<usize> = self
            .memo_losses
            .iter()
            .filter(|l| l.run == run)
            .flat_map(|l| l.partitions.iter().copied())
            .collect();
        parts.sort_unstable();
        parts.dedup();
        parts
    }

    /// Cache nodes failing before run `run`, in plan order.
    pub fn cache_failures_for_run(&self, run: u64) -> Vec<usize> {
        self.cache_failures
            .iter()
            .filter(|e| e.run == run)
            .map(|e| e.node)
            .collect()
    }

    /// Cache nodes recovering before run `run`, in plan order.
    pub fn cache_recoveries_for_run(&self, run: u64) -> Vec<usize> {
        self.cache_recoveries
            .iter()
            .filter(|e| e.run == run)
            .map(|e| e.node)
            .collect()
    }

    /// Corruptions landing before run `run` as `(partition, node)` pairs,
    /// in plan order.
    pub fn corruptions_for_run(&self, run: u64) -> Vec<(usize, usize)> {
        self.corruptions
            .iter()
            .filter(|c| c.run == run)
            .map(|c| (c.partition, c.node))
            .collect()
    }

    /// True when the master index is lost before run `run`.
    pub fn loses_master_before(&self, run: u64) -> bool {
        self.master_losses.contains(&run)
    }

    /// Checks plan-internal invariants (finite times, usable factors).
    pub(crate) fn validate(&self) -> Result<(), String> {
        for c in &self.crashes {
            if !c.at_seconds.is_finite() || c.at_seconds < 0.0 {
                return Err(format!(
                    "crash time {} for machine {} must be finite and >= 0",
                    c.at_seconds, c.machine
                ));
            }
        }
        for s in &self.stragglers {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(format!(
                    "straggler factor {} for machine {} must be finite and positive",
                    s.factor, s.machine
                ));
            }
        }
        Ok(())
    }
}

/// xorshift64: small, deterministic, dependency-free (matches the cluster
/// crate's seeded-plan generator).
fn next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Reduces a raw draw into `0..modulo` — in u64 before narrowing, so the
/// conversion can never truncate (the result is bounded by `modulo`).
fn bounded(value: u64, modulo: usize) -> usize {
    usize::try_from(value % modulo.max(1) as u64).expect("bounded by a usize modulo")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = JobFaultPlan::seeded(42, 5, 8, 4);
        let b = JobFaultPlan::seeded(42, 5, 8, 4);
        assert_eq!(a, b);
        // Some seed in a small range must produce a non-trivial plan.
        assert!((0..16).any(|s| !JobFaultPlan::seeded(s, 5, 8, 4).is_trivial()));
    }

    #[test]
    fn seeded_plans_never_crash_machine_zero() {
        for seed in 0..64 {
            let plan = JobFaultPlan::seeded(seed, 6, 4, 3);
            assert!(plan.crashes.iter().all(|c| c.machine != 0), "seed {seed}");
            assert!(plan.memo_losses.iter().all(|l| l.run > 0), "seed {seed}");
        }
    }

    #[test]
    fn per_run_projection_selects_only_that_run() {
        let plan = JobFaultPlan::none()
            .crash(1, 2, 3.0)
            .crash(2, 1, 1.0)
            .slow(1, 3, 0.5)
            .lose_memo(2, vec![1, 0, 1])
            .fail_cache_node(1, 0)
            .recover_cache_node(2, 0)
            .with_speculation();
        let run1 = plan.cluster_plan_for_run(1);
        assert_eq!(run1.crashes.len(), 1);
        assert_eq!(run1.slowdowns.len(), 1);
        assert!(run1.speculation);
        let run0 = plan.cluster_plan_for_run(0);
        assert!(run0.crashes.is_empty() && run0.slowdowns.is_empty());
        assert_eq!(plan.lost_partitions(2), vec![0, 1]);
        assert!(plan.lost_partitions(1).is_empty());
        assert_eq!(plan.cache_failures_for_run(1), vec![0]);
        assert_eq!(plan.cache_recoveries_for_run(2), vec![0]);
    }

    #[test]
    fn self_healing_faults_project_per_run() {
        let plan = JobFaultPlan::none()
            .corrupt_object(2, 1, 3)
            .corrupt_object(2, 0, 2)
            .corrupt_object(3, 1, 1)
            .lose_master(3);
        assert!(!plan.is_trivial());
        assert_eq!(plan.corruptions_for_run(2), vec![(1, 3), (0, 2)]);
        assert_eq!(plan.corruptions_for_run(1), vec![]);
        assert!(plan.loses_master_before(3));
        assert!(!plan.loses_master_before(2));
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(JobFaultPlan::none()
            .crash(0, 0, f64::NAN)
            .validate()
            .is_err());
        assert!(JobFaultPlan::none().slow(0, 0, 0.0).validate().is_err());
        assert!(JobFaultPlan::none().crash(0, 0, 1.0).validate().is_ok());
    }
}
