//! Job-level error type.

use std::error::Error;
use std::fmt;

use slider_core::TreeError;

/// Errors reported by the windowed job driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// A contraction tree rejected the slide.
    Tree(TreeError),
    /// The slide violates the execution mode's window discipline (e.g.
    /// removing splits from an append-only job, or a fixed-width slide that
    /// is not a whole number of buckets).
    ModeViolation(String),
    /// Asked to remove more splits than the window holds.
    RemoveExceedsWindow {
        /// Splits the caller asked to drop.
        requested: usize,
        /// Splits currently in the window.
        window: usize,
    },
    /// A split id was reused within the job's lifetime.
    DuplicateSplit(u64),
    /// An interior splice addressed a split range outside the window.
    SpliceOutOfRange {
        /// Window position of the splice (0 = oldest split).
        at: usize,
        /// Splits the splice would insert or evict.
        count: usize,
        /// Splits currently in the window.
        window: usize,
    },
    /// Asked to evict the oldest batch of a window that holds none. The
    /// feeder's bookkeeping makes this unreachable in normal operation; it
    /// is reported as a typed error (never a panic) so a corrupted window
    /// count degrades into a recoverable failure.
    EmptyWindow,
    /// An empty batch was pushed while the window was not yet full: there
    /// is nothing to compute and no slide to perform, so the push is
    /// rejected instead of running a no-op job run that would permanently
    /// occupy a window slot. Once the window is full, empty batches are
    /// legal — they slide the window (evicting the oldest batch).
    EmptyBatch,
    /// The job configuration is inconsistent (detailed in the message).
    BadConfig(String),
    /// A failure injected by a scripted fault plan (chaos testing): the
    /// operation was made to fail deterministically before reaching the
    /// engine, so recovery paths — retries, circuit breakers, restores —
    /// can be exercised without corrupting any real state.
    Injected(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Tree(e) => write!(f, "contraction tree error: {e}"),
            JobError::ModeViolation(msg) => write!(f, "window mode violation: {msg}"),
            JobError::RemoveExceedsWindow { requested, window } => {
                write!(
                    f,
                    "cannot remove {requested} splits from a window of {window}"
                )
            }
            JobError::DuplicateSplit(id) => write!(f, "split id {id} was already used"),
            JobError::SpliceOutOfRange { at, count, window } => {
                write!(
                    f,
                    "splice of {count} splits at position {at} is outside a window of {window}"
                )
            }
            JobError::EmptyWindow => {
                write!(f, "cannot evict the oldest batch of an empty window")
            }
            JobError::EmptyBatch => {
                write!(
                    f,
                    "empty batch pushed before the window filled: nothing to compute"
                )
            }
            JobError::BadConfig(msg) => write!(f, "bad job configuration: {msg}"),
            JobError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for JobError {
    fn from(e: TreeError) -> Self {
        JobError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = JobError::from(TreeError::RemoveFromAppendOnly);
        assert!(err.to_string().contains("append-only"));
        assert!(err.source().is_some());
        assert!(JobError::DuplicateSplit(3).source().is_none());
    }
}
