//! The shared partition-sharded parallel execution runtime.
//!
//! The contraction phase is embarrassingly parallel across reduce
//! partitions: each partition owns its trees, its slice of the output map
//! (keys are hash-partitioned in [`crate::shuffle`]), and its work
//! recorder. This module provides the one worker pool all executors —
//! [`crate::WindowedJob`], [`crate::Pipeline`] inner stages, and the query
//! layer on top of them — use to run per-shard work concurrently.
//!
//! Two invariants make the runtime safe to drop into a metered engine:
//!
//! * **Input-order results.** [`Runtime::map`] and [`Runtime::map_mut`]
//!   return one result per item, in item order, regardless of which worker
//!   produced it. Callers fold per-shard statistics sequentially over that
//!   vector, so every modeled metric ([`slider_core::UpdateStats`],
//!   [`crate::RunStats`]) is bitwise-identical for any thread count.
//! * **Disjoint shards.** Workers receive `&mut` access to disjoint slice
//!   elements only; nothing else is shared mutably. There are no locks and
//!   no atomics on the data path.
//!
//! Thread count resolution (see [`Runtime::auto`]): the `SLIDER_THREADS`
//! environment variable overrides everything; otherwise a positive
//! [`crate::JobConfig::threads`] wins; otherwise the machine's available
//! parallelism is used.

use std::fmt;

use slider_trace::TraceSink;

/// Environment variable overriding the configured worker-thread count.
pub const THREADS_ENV: &str = "SLIDER_THREADS";

/// A `std`-only worker pool scoped to each call: work is divided into
/// contiguous chunks, one [`std::thread::scope`] worker per chunk, and
/// results are written into per-item slots so output order equals input
/// order.
#[derive(Clone)]
pub struct Runtime {
    threads: usize,
    /// Trace sink for batch/item counters. Only ever touched on the
    /// calling (control) thread — never inside worker closures — so the
    /// collected counters are identical for any thread count.
    trace: TraceSink,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Runtime {
    /// A runtime with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Runtime {
            threads: threads.max(1),
            trace: TraceSink::disabled(),
        }
    }

    /// A runtime resolved from configuration: `SLIDER_THREADS` if set to a
    /// positive integer, else `configured` if positive, else the machine's
    /// available parallelism.
    pub fn auto(configured: usize) -> Self {
        if let Ok(value) = std::env::var(THREADS_ENV) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return Runtime::new(n);
                }
            }
        }
        if configured > 0 {
            return Runtime::new(configured);
        }
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runtime::new(n)
    }

    /// A sequential runtime (one worker).
    pub fn sequential() -> Self {
        Runtime::new(1)
    }

    /// Number of worker threads this runtime uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a trace sink for the `runtime.batches` / `runtime.items`
    /// counters. Builder-style.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Meters one batch on the control thread (never inside workers).
    fn meter_batch(&self, items: usize) {
        self.trace.with(|t| {
            t.add("runtime.batches", 1);
            t.add("runtime.items", items as u64);
        });
    }

    /// Applies `f` to every item, in parallel across workers, returning the
    /// results in item order. `f` receives the item index.
    pub fn map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(usize, &I) -> R + Sync,
    {
        self.meter_batch(items.len());
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (ci, (item_chunk, out_chunk)) in
                items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
            {
                let f = &f;
                scope.spawn(move || {
                    for (j, (item, slot)) in item_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                    {
                        *slot = Some(f(ci * chunk + j, item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }

    /// Like [`Runtime::map`], but hands each worker exclusive `&mut` access
    /// to its items — the shard-update primitive. Results come back in item
    /// order.
    pub fn map_mut<I, R, F>(&self, items: &mut [I], f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(usize, &mut I) -> R + Sync,
    {
        self.meter_batch(items.len());
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (ci, (item_chunk, out_chunk)) in items
                .chunks_mut(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
            {
                let f = &f;
                scope.spawn(move || {
                    for (j, (item, slot)) in
                        item_chunk.iter_mut().zip(out_chunk.iter_mut()).enumerate()
                    {
                        *slot = Some(f(ci * chunk + j, item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_input_order() {
        let items: Vec<u64> = (0..103).collect();
        for threads in [1, 2, 4, 7] {
            let rt = Runtime::new(threads);
            let doubled = rt.map(&items, |i, &x| {
                assert_eq!(i as u64, x, "index matches item position");
                x * 2
            });
            let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
            assert_eq!(doubled, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_mutates_disjoint_shards() {
        for threads in [1, 3, 8] {
            let mut shards: Vec<Vec<u64>> = (0..10).map(|i| vec![i]).collect();
            let rt = Runtime::new(threads);
            let sums = rt.map_mut(&mut shards, |i, shard| {
                shard.push(100 + i as u64);
                shard.iter().sum::<u64>()
            });
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard, &vec![i as u64, 100 + i as u64]);
            }
            let expected: Vec<u64> = (0..10).map(|i| i + 100 + i).collect();
            assert_eq!(sums, expected, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let rt = Runtime::new(16);
        assert_eq!(rt.map(&[5u64, 6], |_, &x| x + 1), vec![6, 7]);
        assert_eq!(rt.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
    }

    #[test]
    fn thread_count_is_clamped_positive() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert_eq!(Runtime::sequential().threads(), 1);
        assert!(Runtime::auto(3).threads() >= 1);
    }
}
