//! Trace viewer export: runs a traced sliding-window job and writes the
//! three `slider-trace` profile exports.
//!
//! ```text
//! cargo run --example trace_viewer -- /tmp/trace-out
//! ```
//!
//! writes into the given directory (created if missing):
//!
//! * `chrome_trace.json` — open in `chrome://tracing` or Perfetto;
//! * `flame.folded`      — feed to `flamegraph.pl` / `inferno-flamegraph`;
//! * `metrics.json`      — the `slider-trace-metrics-v1` counters blob.
//!
//! The trace clock is *virtual* (modeled work units and simulated
//! seconds), so the exported bytes are identical on every rerun and for
//! any `SLIDER_THREADS` value — CI diffs two runs byte-for-byte.

use std::path::PathBuf;

use slider_bench::hct_spec;
use slider_mapreduce::{ExecMode, JobConfig, SimulationConfig, TraceSink, WindowedJob};
use slider_trace::validate_chrome_trace;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/trace-out"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // A representative workload: the HCT micro-benchmark on folding trees
    // with the paper cluster simulated, initial window plus two slides.
    let spec = hct_spec();
    let sink = TraceSink::enabled();
    let config = JobConfig::new(ExecMode::slider_folding())
        .with_partitions(8)
        .with_simulation(SimulationConfig::paper_defaults())
        .with_trace(sink.clone());
    let mut job = WindowedJob::new(spec.app.clone(), config).expect("valid config");
    job.initial_run(spec.initial.clone()).expect("initial run");
    let slide = spec.extra.len() / 2;
    job.advance(slide, spec.extra[..slide].to_vec())
        .expect("slide 1");
    job.advance(slide, spec.extra[slide..2 * slide].to_vec())
        .expect("slide 2");

    let snapshot = sink.snapshot().expect("sink is enabled");
    let chrome = snapshot.chrome_trace();
    let events = validate_chrome_trace(&chrome).expect("export is a valid Chrome trace");
    let folded = snapshot.folded_flamegraph();
    let metrics = snapshot.metrics_json();

    std::fs::write(out_dir.join("chrome_trace.json"), &chrome).expect("write chrome trace");
    std::fs::write(out_dir.join("flame.folded"), &folded).expect("write flamegraph");
    std::fs::write(out_dir.join("metrics.json"), &metrics).expect("write metrics");

    println!(
        "wrote {} ({} complete events), flame.folded ({} frames), metrics.json",
        out_dir.join("chrome_trace.json").display(),
        events,
        folded.lines().count(),
    );
    println!("\ntop 5 spans by self-work:");
    for (name, work) in snapshot.top_spans_by_self_work(5) {
        println!("  {work:>12}  {name}");
    }
}
