//! Chaos, crash, restore — and nobody can tell.
//!
//! A seeded chaos schedule (`slider_workloads::chaos`) drives a
//! three-tenant service through dispatch faults, an overload burst and
//! injected crashes. At every crash the service is snapshotted, dropped,
//! and restored onto a *fresh* engine; the run then simply continues.
//! A second, uninterrupted twin serves the same schedule without
//! crashing, and the example prints both final metrics documents plus
//! the two snapshot manifests — byte-identical, which is the whole
//! point.
//!
//! Everything printed is deterministic: the same bytes on every run and
//! at every worker-thread count (CI runs it twice — once with
//! `SLIDER_THREADS=1` — and `cmp`s).
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-bench --example chaos_restore
//! ```

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{EngineShared, EventTimeConfig, ExecMode, JobError, Stamped};
use slider_serve::{
    BreakerConfig, DispatchFaultPlan, OverloadConfig, ServeError, ServiceRuntime, TenantId,
    TenantSpec,
};
use slider_workloads::chaos::{chaos_plan, ChaosConfig, ChaosEvent, ChaosPlan};
use slider_workloads::disorder::DisorderConfig;
use slider_workloads::multitenant::MultiTenantConfig;

const SEED: u64 = 0xcafe;
const PARTITIONS: usize = 4;
const TENANTS: usize = 3;

fn engine() -> EngineShared {
    EngineShared::builder()
        .cache(CacheConfig::paper_defaults(PARTITIONS))
        .clock()
        .build()
}

fn plan() -> ChaosPlan {
    chaos_plan(
        SEED,
        &ChaosConfig {
            traffic: MultiTenantConfig {
                tenants: TENANTS,
                requests_per_tenant: 8,
                records_per_request: 5,
                stream: DisorderConfig {
                    records: 0,
                    mean_step: 2,
                    lateness: 10,
                    vocabulary: 24,
                },
                hot_tenant: Some(1),
                hot_factor: 2,
                mean_arrival_gap: 6,
            },
            crashes: 3,
            churn_cycles: 1,
            bursts: 1,
            burst_len: 5,
            faulty_tenant: Some(2),
            faults: 2,
            max_fault_attempts: 9,
        },
    )
}

fn spec_of(tenant: usize, plan: &ChaosPlan) -> TenantSpec {
    let event = EventTimeConfig {
        epoch_len: 24,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: 10,
    };
    let mut spec = TenantSpec::new(format!("tenant{tenant}"), ExecMode::slider_folding(), event)
        .with_partitions(PARTITIONS)
        .with_priority(u8::try_from(tenant * 100).unwrap_or(u8::MAX));
    if plan.faults.iter().any(|f| f.tenant == tenant) {
        let mut faults = DispatchFaultPlan::new();
        for f in plan.faults.iter().filter(|f| f.tenant == tenant) {
            faults = faults.fail(f.request, f.attempts);
        }
        spec = spec
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 12,
                ..BreakerConfig::default()
            })
            .with_dispatch_faults(faults);
    }
    spec
}

/// Serves the schedule. With `crash` the injected crash points
/// snapshot/drop/restore the service; without, they are ignored.
fn serve(plan: &ChaosPlan, crash: bool, narrate: bool) -> (ServiceRuntime<Hct>, String) {
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(engine())
        .with_overload(OverloadConfig::new(24, 32))
        .expect("overload config");
    let mut ids: Vec<Option<TenantId>> = (0..TENANTS)
        .map(|t| {
            Some(
                service
                    .register(Hct::new(), spec_of(t, plan))
                    .expect("register"),
            )
        })
        .collect();
    let mut log = String::new();
    for event in &plan.events {
        match event {
            ChaosEvent::Crash => {
                if crash {
                    let snapshot = service.snapshot();
                    drop(service);
                    service = ServiceRuntime::restore(engine(), &snapshot).expect("restore");
                    log.push_str("CRASH + restore onto a fresh engine\n");
                }
            }
            ChaosEvent::Deregister(t) => {
                if let Some(id) = ids[*t].take() {
                    let report = service.deregister(id).expect("deregister");
                    log.push_str(&format!(
                        "tenant{t} left after {} runs\n",
                        report.stats.runs
                    ));
                }
            }
            ChaosEvent::Register(t) => {
                if ids[*t].is_none() {
                    ids[*t] = Some(
                        service
                            .register(Hct::new(), spec_of(*t, plan))
                            .expect("rejoin"),
                    );
                    log.push_str(&format!("tenant{t} rejoined with a fresh window\n"));
                }
            }
            ChaosEvent::Request(request) => {
                let Some(id) = ids[request.tenant] else {
                    continue;
                };
                let records: Vec<Stamped<String>> = request
                    .records
                    .iter()
                    .map(|(t, s, line)| Stamped::new(*t, *s, line.clone()))
                    .collect();
                match service.ingest(id, request.arrival, records) {
                    Ok(outcome) => log.push_str(&format!(
                        "t={:>3} tenant{} {} runs={}\n",
                        request.arrival,
                        request.tenant,
                        outcome.decision,
                        outcome.runs.len()
                    )),
                    Err(ServeError::Job(JobError::Injected(msg))) => {
                        log.push_str(&format!(
                            "t={:>3} tenant{} FAILED: {msg}\n",
                            request.arrival, request.tenant
                        ));
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }
    if narrate {
        print!("{log}");
    }
    (service, log)
}

fn main() {
    let plan = plan();
    let crashes = plan
        .events
        .iter()
        .filter(|e| matches!(e, ChaosEvent::Crash))
        .count();
    println!(
        "== chaos schedule: {} events, {} crashes, {} scripted faults ==",
        plan.events.len(),
        crashes,
        plan.faults.len()
    );
    println!();

    println!("== serving through the chaos (crashing at every marker) ==");
    let (crashed, crashed_log) = serve(&plan, true, true);
    println!();

    let (straight, straight_log) = serve(&plan, false, false);
    assert_eq!(
        crashed_log.replace("CRASH + restore onto a fresh engine\n", ""),
        straight_log,
        "the crashed run's request log must equal the uninterrupted twin's"
    );

    println!("== /metrics (crashed {crashes} times) ==");
    print!("{}", crashed.metrics());
    println!();
    println!("== /health ==");
    print!("{}", crashed.health());
    println!();

    let crashed_manifest = crashed.snapshot().describe();
    let straight_manifest = straight.snapshot().describe();
    println!("== final snapshot manifest ==");
    print!("{crashed_manifest}");
    println!();
    println!(
        "crashed-twin metrics  == uninterrupted-twin metrics:  {}",
        crashed.metrics() == straight.metrics()
    );
    println!(
        "crashed-twin manifest == uninterrupted-twin manifest: {}",
        crashed_manifest == straight_manifest
    );
    assert_eq!(crashed.metrics(), straight.metrics());
    assert_eq!(crashed_manifest, straight_manifest);
}
