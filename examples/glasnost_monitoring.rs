//! Case study §8.2: monitoring Glasnost measurement servers over a
//! fixed-width window (3 months, sliding by 1 month) with rotating
//! contraction trees and split processing.
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-apps --example glasnost_monitoring
//! ```

use slider_apps::GlasnostMonitor;
use slider_mapreduce::{make_splits, ExecMode, JobConfig, Split, WindowedJob};
use slider_workloads::glasnost::{generate_months, GlasnostConfig, TABLE3_MONTHLY_TESTS};

const SPLITS_PER_MONTH: usize = 8;
const MONTHS: [&str; 11] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic test traces with the paper's Table 3 monthly volumes.
    let config = GlasnostConfig {
        servers: 4,
        clients: 500,
        samples_per_test: 20,
    };
    let months = generate_months(7, &config, &TABLE3_MONTHLY_TESTS);

    // Window = 3 month-buckets of SPLITS_PER_MONTH splits each.
    let mut job = WindowedJob::new(
        GlasnostMonitor::new(),
        JobConfig::new(ExecMode::slider_rotating(true))
            .with_partitions(4)
            .with_buckets(3, SPLITS_PER_MONTH),
    )?;

    let mut next_id = 0u64;
    let mut mk = |traces: &Vec<slider_workloads::glasnost::TestTrace>| {
        let per_split = traces.len().div_ceil(SPLITS_PER_MONTH);
        let mut splits = make_splits(next_id, traces.clone(), per_split);
        while splits.len() < SPLITS_PER_MONTH {
            splits.push(Split::from_records(
                next_id + splits.len() as u64,
                Vec::new(),
            ));
        }
        next_id += SPLITS_PER_MONTH as u64;
        splits
    };

    let initial: Vec<_> = months[0..3].iter().flat_map(&mut mk).collect();
    job.initial_run(initial)?;
    print_medians("Jan-Mar", &job);

    for (i, month) in months.iter().enumerate().skip(3) {
        let stats = job.advance(SPLITS_PER_MONTH, mk(month))?;
        let label = format!("{}-{}", MONTHS[i - 2], MONTHS[i]);
        println!(
            "  slide: +{} tests, update work {} units, {} tree nodes reused",
            month.len(),
            stats.work.foreground_total(),
            stats.nodes_reused
        );
        print_medians(&label, &job);
    }
    Ok(())
}

fn print_medians(window: &str, job: &WindowedJob<GlasnostMonitor>) {
    let medians: Vec<String> = job
        .output()
        .iter()
        .map(|(server, median)| format!("server {server}: {median:.1}ms"))
        .collect();
    println!(
        "{window}: median min-RTT per measurement server — {}",
        medians.join(", ")
    );
}
