//! Shootout report viewer and CI regression gate.
//!
//! ```text
//! cargo run --example shootout_viewer -- BENCH_shootout.json
//! cargo run --example shootout_viewer -- --check BASELINE.json CANDIDATE.json
//! ```
//!
//! The first form prints the per-structure cost table from a
//! `BENCH_shootout.json` report. Output is a pure function of the file's
//! bytes — byte-identical across reruns and `SLIDER_THREADS` values — so
//! CI can diff two invocations with `cmp`.
//!
//! The second form compares a candidate report against a checked-in
//! baseline and exits non-zero if any structure's modeled `work_per_leaf`
//! regressed by more than 10%, or if a grid point disappeared.

use std::collections::BTreeMap;
use std::process::ExitCode;

use slider_bench::{fmt_f64, Table};
use slider_trace::json::JsonValue;
use slider_trace::parse_json;

/// Modeled-work regressions beyond this ratio fail the `--check` gate.
const MAX_WORK_REGRESSION: f64 = 1.10;

fn load_summary(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some("slider-bench-v1") {
        return Err(format!("{path}: not a slider-bench-v1 report"));
    }
    match doc.get("summary") {
        Some(JsonValue::Obj(map)) => Ok(map
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect()),
        _ => Err(format!("{path}: missing summary section")),
    }
}

/// Splits `daba-lite.w4096.p10.work_per_leaf` into its grid coordinates.
/// Returns `(kind, window, pct, metric)`.
fn parse_key(key: &str) -> Option<(String, u64, u64, String)> {
    let mut parts = key.split('.');
    let kind = parts.next()?.to_string();
    let window = parts.next()?.strip_prefix('w')?.parse().ok()?;
    let pct = parts.next()?.strip_prefix('p')?.parse().ok()?;
    let metric = parts.next()?.to_string();
    if parts.next().is_some() {
        return None;
    }
    Some((kind, window, pct, metric))
}

fn print_table(summary: &BTreeMap<String, f64>) {
    // Regroup flat metrics into rows, sorted numerically (BTreeMap string
    // order would put w1024 before w256).
    let mut rows: BTreeMap<(String, u64, u64), BTreeMap<String, f64>> = BTreeMap::new();
    for (key, value) in summary {
        if let Some((kind, window, pct, metric)) = parse_key(key) {
            rows.entry((kind, window, pct))
                .or_default()
                .insert(metric, *value);
        }
    }
    let mut table = Table::new(&[
        "structure",
        "window",
        "slide%",
        "merges/leaf",
        "work/leaf",
        "sim s/leaf",
    ]);
    let cell = |m: &BTreeMap<String, f64>, k: &str| m.get(k).map_or("-".into(), |v| fmt_f64(*v));
    for ((kind, window, pct), metrics) in &rows {
        table.row(vec![
            kind.clone(),
            window.to_string(),
            pct.to_string(),
            cell(metrics, "merges_per_leaf"),
            cell(metrics, "work_per_leaf"),
            metrics
                .get("seconds_per_leaf")
                .map_or("-".into(), |v| format!("{v:.3e}")),
        ]);
    }
    print!("{}", table.render());
}

fn check(baseline_path: &str, candidate_path: &str) -> Result<(), String> {
    let baseline = load_summary(baseline_path)?;
    let candidate = load_summary(candidate_path)?;
    let mut failures = Vec::new();
    for (key, base) in &baseline {
        if !key.ends_with(".work_per_leaf") {
            continue;
        }
        match candidate.get(key) {
            None => failures.push(format!("{key}: missing from candidate")),
            Some(cand) if *base > 0.0 && cand / base > MAX_WORK_REGRESSION => {
                failures.push(format!(
                    "{key}: {} -> {} (+{:.1}%, limit 10%)",
                    fmt_f64(*base),
                    fmt_f64(*cand),
                    (cand / base - 1.0) * 100.0
                ));
            }
            _ => {}
        }
    }
    if failures.is_empty() {
        println!(
            "shootout check OK: {} work_per_leaf metrics within 10% of baseline",
            baseline
                .keys()
                .filter(|k| k.ends_with(".work_per_leaf"))
                .count()
        );
        Ok(())
    } else {
        Err(format!(
            "modeled-work regression vs {baseline_path}:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [path] => load_summary(path).map(|summary| print_table(&summary)),
        [flag, baseline, candidate] if flag == "--check" => check(baseline, candidate),
        _ => Err(
            "usage: shootout_viewer <report.json> | --check <baseline.json> <candidate.json>"
                .to_string(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("shootout_viewer: {message}");
            ExitCode::FAILURE
        }
    }
}
