//! Join-bench report viewer and CI regression gate.
//!
//! ```text
//! cargo run --example join_viewer -- BENCH_join.json
//! cargo run --example join_viewer -- --check BASELINE.json CANDIDATE.json
//! ```
//!
//! The first form prints the incremental-vs-recompute grid from a
//! `BENCH_join.json` report. Output is a pure function of the file's
//! bytes — byte-identical across reruns and `SLIDER_THREADS` values.
//!
//! The second form compares a candidate report against a checked-in
//! baseline and exits non-zero if any grid point's incremental modeled
//! work regressed by more than 10%, or if a grid point disappeared.

use std::collections::BTreeMap;
use std::process::ExitCode;

use slider_bench::{fmt_f64, Table};
use slider_trace::json::JsonValue;
use slider_trace::parse_json;

/// Modeled-work regressions beyond this ratio fail the `--check` gate.
const MAX_WORK_REGRESSION: f64 = 1.10;

fn load_summary(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some("slider-bench-v1") {
        return Err(format!("{path}: not a slider-bench-v1 report"));
    }
    match doc.get("summary") {
        Some(JsonValue::Obj(map)) => Ok(map
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect()),
        _ => Err(format!("{path}: missing summary section")),
    }
}

/// Splits `join.w1024.p10.inc_work` into `(window, pct, metric)`.
fn parse_join_key(key: &str) -> Option<(u64, u64, String)> {
    let rest = key.strip_prefix("join.")?;
    let mut parts = rest.split('.');
    let window = parts.next()?.strip_prefix('w')?.parse().ok()?;
    let pct = parts.next()?.strip_prefix('p')?.parse().ok()?;
    let metric = parts.next()?.to_string();
    if parts.next().is_some() {
        return None;
    }
    Some((window, pct, metric))
}

fn print_tables(summary: &BTreeMap<String, f64>) {
    let mut rows: BTreeMap<(u64, u64), BTreeMap<String, f64>> = BTreeMap::new();
    let mut approx: BTreeMap<String, f64> = BTreeMap::new();
    for (key, value) in summary {
        if let Some((window, pct, metric)) = parse_join_key(key) {
            rows.entry((window, pct))
                .or_default()
                .insert(metric, *value);
        } else if key.starts_with("approx.") {
            approx.insert(key.clone(), *value);
        }
    }
    let mut table = Table::new(&["window", "slide%", "inc work", "rec work", "speedup"]);
    for ((window, pct), metrics) in &rows {
        let inc = metrics.get("inc_work").copied().unwrap_or(f64::NAN);
        let rec = metrics.get("rec_work").copied().unwrap_or(f64::NAN);
        table.row(vec![
            window.to_string(),
            pct.to_string(),
            fmt_f64(inc),
            fmt_f64(rec),
            if inc > 0.0 {
                format!("{:.2}x", rec / inc)
            } else {
                "-".into()
            },
        ]);
    }
    print!("{}", table.render());
    if !approx.is_empty() {
        let mut atable = Table::new(&["metric", "value"]);
        for (k, v) in &approx {
            atable.row(vec![k.clone(), fmt_f64(*v)]);
        }
        print!("{}", atable.render());
    }
}

fn check(baseline_path: &str, candidate_path: &str) -> Result<(), String> {
    let baseline = load_summary(baseline_path)?;
    let candidate = load_summary(candidate_path)?;
    let mut failures = Vec::new();
    for (key, base) in &baseline {
        if !key.ends_with(".inc_work") {
            continue;
        }
        match candidate.get(key) {
            None => failures.push(format!("{key}: missing from candidate")),
            Some(cand) if *base > 0.0 && cand / base > MAX_WORK_REGRESSION => {
                failures.push(format!(
                    "{key}: {} -> {} (+{:.1}%, limit 10%)",
                    fmt_f64(*base),
                    fmt_f64(*cand),
                    (cand / base - 1.0) * 100.0
                ));
            }
            _ => {}
        }
    }
    if failures.is_empty() {
        println!(
            "join check OK: {} inc_work metrics within 10% of baseline",
            baseline.keys().filter(|k| k.ends_with(".inc_work")).count()
        );
        Ok(())
    } else {
        Err(format!(
            "modeled-work regression vs {baseline_path}:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [path] => load_summary(path).map(|summary| print_tables(&summary)),
        [flag, baseline, candidate] if flag == "--check" => check(baseline, candidate),
        _ => Err(
            "usage: join_viewer <report.json> | --check <baseline.json> <candidate.json>"
                .to_string(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("join_viewer: {message}");
            ExitCode::FAILURE
        }
    }
}
