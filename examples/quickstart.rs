//! Quickstart: incremental windowed word count.
//!
//! Shows the core promise of Slider: you write a plain, single-pass
//! MapReduce application — no incremental logic — and the engine updates
//! the output efficiently as the window slides.
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-apps --example quickstart
//! ```

use slider_mapreduce::{make_splits, ExecMode, JobConfig, MapReduceApp, WindowedJob};

/// Plain word count. Nothing here knows about sliding windows.
struct WordCount;

impl MapReduceApp for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_lowercase(), 1);
        }
    }

    fn combine(&self, _word: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn reduce(&self, _word: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A windowed job using the variable-width folding tree (§3.1). The
    // same app runs unchanged under ExecMode::Recompute, Strawman, or any
    // other tree.
    let config = JobConfig::new(ExecMode::slider_folding()).with_partitions(4);
    let mut job = WindowedJob::new(WordCount, config)?;

    // The initial window: three "hours" of logs, one split each.
    let hours = [
        "error disk full on node three",
        "ok ok error timeout on node seven",
        "ok deploy finished error gone",
    ];
    let splits = make_splits(0, hours.iter().map(|s| s.to_string()).collect(), 1);
    let stats = job.initial_run(splits)?;
    println!(
        "initial window: {} splits, {} distinct words",
        3,
        job.output().len()
    );
    println!("  'error' count: {:?}", job.output().get("error"));
    println!("  initial work: {} units\n", stats.work.foreground_total());

    // The window slides: hour 1 falls out, hour 4 arrives.
    let next_hour = vec!["ok ok ok error".to_string()];
    let stats = job.advance(1, make_splits(10, next_hour, 1))?;
    println!(
        "after slide: 'error' count: {:?}",
        job.output().get("error")
    );
    println!("  update work: {} units", stats.work.foreground_total());
    println!(
        "  {} of {} map outputs reused, {} keys untouched",
        stats.map_reused,
        job.window_splits(),
        stats.keys_reused
    );

    // Compare: how much work would recomputing from scratch have done?
    let mut vanilla = WindowedJob::new(WordCount, JobConfig::new(ExecMode::Recompute))?;
    let hours_2_to_4 = [
        "ok ok error timeout on node seven",
        "ok deploy finished error gone",
        "ok ok ok error",
    ];
    let v = vanilla.initial_run(make_splits(
        0,
        hours_2_to_4.iter().map(|s| s.to_string()).collect(),
        1,
    ))?;
    assert_eq!(
        vanilla.output(),
        job.output(),
        "incremental result must be identical"
    );
    println!(
        "\nvanilla recompute of the same window: {} units ({}x the incremental update)",
        v.work.foreground_total(),
        v.work.foreground_total() / stats.work.foreground_total().max(1)
    );
    Ok(())
}
