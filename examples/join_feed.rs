//! Windowed stream join walkthrough: follow edges ⋈ URL posts.
//!
//! ```text
//! cargo run --example join_feed
//! SLIDER_THREADS=4 cargo run --example join_feed
//! ```
//!
//! Feeds the two synthetic Twitter streams through a
//! [`JoinedJob`](slider_join::JoinedJob) in slide-sized batches, printing
//! the joint watermark, the per-advance delta counts, and a digest of the
//! materialized view after every poll. Every line is deterministic — CI
//! runs this twice at different `SLIDER_THREADS` values and `cmp`s the
//! outputs byte-for-byte.

use slider_apps::FollowPostJoin;
use slider_join::{JoinConfig, JoinedJob};
use slider_mapreduce::{EngineShared, EventTimeConfig, Stamped};
use slider_workloads::twitter::{follow_stream, generate, TwitterConfig};

fn main() {
    let event = EventTimeConfig {
        epoch_len: 16,
        records_per_split: 16,
        window_epochs: Some(6),
        lateness: 4,
    };
    let config = TwitterConfig {
        users: 48,
        avg_follows: 5,
        urls: 24,
        repost_probability: 0.3,
    };
    let dataset = generate(0x1e55, &config, 480);
    let follows = follow_stream(0xf011, &dataset.graph, 480, 480);

    let shared = EngineShared::builder().build();
    let mut job =
        JoinedJob::new(FollowPostJoin, JoinConfig::new(event), &shared).expect("join job builds");

    println!("follow edges x url posts, window = 6 epochs x 16 ticks, lateness 4");
    println!(
        "{:>5} {:>10} {:>7} {:>7} {:>7} {:>8} {:>16}",
        "tick", "watermark", "probes", "+pairs", "-pairs", "keys", "view checksum"
    );

    let (mut fi, mut ti) = (0usize, 0usize);
    let mut tick = 16u64;
    while tick <= 512 {
        while fi < follows.len() && follows[fi].time < tick {
            let ev = follows[fi].clone();
            job.ingest_left([Stamped::new(ev.time, u64::try_from(fi).expect("fits"), ev)]);
            fi += 1;
        }
        while ti < dataset.tweets.len() && dataset.tweets[ti].time < tick {
            let tw = dataset.tweets[ti].clone();
            job.ingest_right([Stamped::new(tw.time, u64::try_from(ti).expect("fits"), tw)]);
            ti += 1;
        }
        let run = job.poll().expect("poll");
        let added = run.deltas.iter().filter(|d| d.added).count();
        let removed = run.deltas.len() - added;
        let checksum = job
            .view()
            .values()
            .fold(0u64, |acc, c| acc.wrapping_mul(31).wrapping_add(c.check));
        println!(
            "{:>5} {:>10} {:>7} {:>7} {:>7} {:>8} {:>16x}",
            tick,
            job.joint_watermark().map_or("-".into(), |w| w.to_string()),
            run.stats.probes,
            added,
            removed,
            job.view().len(),
            checksum,
        );
        tick += 16;
    }

    let run = job.close_all().expect("close_all");
    println!(
        "close_all: +{} -{} pairs, final view {} keys",
        run.stats.pairs_added,
        run.stats.pairs_removed,
        job.view().len()
    );
    assert_eq!(
        job.view(),
        &job.reference_view(),
        "view == brute-force reference"
    );
    let stats = job.stats();
    println!(
        "totals: advances {} steps {} probes {} probe_work {} side_work {}",
        stats.advances, stats.steps, stats.probes, stats.probe_work, stats.side_work
    );
    println!("incremental view verified against the brute-force cross product.");
}
