//! Event-time windows over a disordered stream.
//!
//! Real streams do not arrive in window order. This example feeds a
//! shuffled, bursty word stream through an [`EventFeeder`]: records
//! disordered within the lateness bound are reordered transparently by
//! the watermark's reorder buffer, a genuine straggler is spliced into the
//! interior of the window, and the output is compared against the sorted
//! stream's to show both end in the same place.
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-bench --example event_time
//! ```

use slider_mapreduce::{
    EventFeeder, EventTimeConfig, ExecMode, JobConfig, MapReduceApp, Stamped, WindowedJob,
};
use slider_workloads::disorder::{
    disordered_stream, max_displacement, sorted_twin, DisorderConfig,
};

/// Plain word count; nothing here knows about event time.
struct WordCount;

impl MapReduceApp for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;

    fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_string(), 1);
        }
    }

    fn combine(&self, _w: &String, a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn reduce(&self, _w: &String, parts: &[&u64]) -> u64 {
        parts.iter().copied().sum()
    }
}

fn feeder(event: EventTimeConfig) -> Result<EventFeeder<WordCount>, Box<dyn std::error::Error>> {
    let job = WindowedJob::new(
        WordCount,
        JobConfig::new(ExecMode::slider_folding()).with_partitions(4),
    )?;
    Ok(EventFeeder::new(job, event)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let disorder = DisorderConfig {
        records: 160,
        mean_step: 2,
        lateness: 16,
        vocabulary: 12,
    };
    let event = EventTimeConfig {
        epoch_len: 40,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: disorder.lateness,
    };

    let stream = disordered_stream(42, &disorder);
    println!(
        "stream: {} records, shuffled with max displacement {} (bound {})",
        stream.len(),
        max_displacement(&stream),
        disorder.lateness
    );

    // Feed the shuffled stream and its sorted twin through identical jobs.
    let mut shuffled = feeder(event)?;
    let mut ordered = feeder(event)?;
    for (chunk_no, chunk) in stream.chunks(25).enumerate() {
        shuffled.ingest(
            chunk
                .iter()
                .map(|(t, s, l)| Stamped::new(*t, *s, l.clone())),
        );
        let runs = shuffled.flush()?;
        println!(
            "chunk {chunk_no}: watermark={:?} closed {} run(s), {} record(s) still buffered",
            shuffled.watermark(),
            runs.len(),
            shuffled.buffered_records()
        );
    }
    for chunk in sorted_twin(&stream).chunks(25) {
        ordered.ingest(
            chunk
                .iter()
                .map(|(t, s, l)| Stamped::new(*t, *s, l.clone())),
        );
        ordered.flush()?;
    }
    shuffled.close_all()?;
    ordered.close_all()?;

    assert_eq!(
        shuffled.output(),
        ordered.output(),
        "in-bound disorder must be invisible"
    );
    println!(
        "outputs identical to the sorted twin across {} closed epochs: {:?}",
        shuffled.stats().epochs_closed,
        shuffled.output()
    );

    // A straggler: far below the watermark, but its epoch is still in the
    // window, so it is admitted through an interior bulk splice.
    let live_epoch = shuffled.window_epochs()[0];
    let straggler_time = live_epoch * event.epoch_len;
    shuffled.ingest([Stamped::new(straggler_time, 9_999, "straggler".to_string())]);
    shuffled.flush()?;
    println!(
        "straggler at t={straggler_time} admitted late: count={:?}, stats={:?}",
        shuffled.output().get("straggler"),
        shuffled.stats()
    );
    assert_eq!(shuffled.output().get("straggler"), Some(&1));
    Ok(())
}
