//! Case study §8.3: client accountability in a hybrid CDN over a
//! variable-width window (one month of weekly uploads, with week sizes
//! varying by client availability), using folding contraction trees.
//!
//! Demonstrates [`slider_mapreduce::WindowFeeder`] — batch-oriented window
//! management — and the fault-tolerant memoization layer: a cache node
//! crashes mid-stream and reads transparently fall back to the persistent
//! replicas.
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-apps --example netsession_audit
//! ```

use slider_apps::{AuditVerdict, NetSessionAudit};
use slider_dcache::CacheConfig;
use slider_mapreduce::{ExecMode, JobConfig, WindowFeeder, WindowedJob};
use slider_workloads::netsession::{generate_week, NetSessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NetSessionConfig {
        clients: 3_000,
        mean_entries: 25,
        tamper_rate: 0.02,
    };
    let job = WindowedJob::new(
        NetSessionAudit::new(),
        JobConfig::new(ExecMode::slider_folding())
            .with_partitions(4)
            .with_cache(CacheConfig::paper_defaults(8)),
    )?;
    // The feeder keeps the most recent 4 weekly batches in the window,
    // 150 logs per split — batch sizes vary, which is the variable-width
    // case the folding tree exists for.
    let mut feeder = WindowFeeder::new(job, 150, Some(4));

    // Weekly upload fractions: how many clients were online to upload.
    let fractions = [1.0, 0.92, 0.85, 0.97, 0.75, 0.9, 1.0];
    for (week, &fraction) in fractions.iter().enumerate() {
        if week == 5 {
            println!("  !! cache node 2 crashes — memoized state falls back to replicas");
            feeder.job_mut().fail_cache_node(2);
        }
        let logs = generate_week(11, &config, week as u32, fraction);
        let uploaded = logs.len();
        let stats = feeder.push_batch(logs)?;
        if let Some(cache) = &stats.cache {
            println!(
                "week {week}: {uploaded} uploads ({:.0}% online) | window {} splits | work {} | cache {} mem hits / {} disk fallbacks",
                fraction * 100.0,
                feeder.job().window_splits(),
                stats.work.foreground_total(),
                cache.memory_hits,
                cache.disk_reads,
            );
        }
        report(feeder.output());
    }
    Ok(())
}

fn report(output: &std::collections::BTreeMap<u32, AuditVerdict>) {
    let flagged: Vec<u32> = output
        .iter()
        .filter_map(|(client, verdict)| match verdict {
            AuditVerdict::Flagged { .. } => Some(*client),
            AuditVerdict::Clean { .. } => None,
        })
        .collect();
    println!(
        "  audited {} clients, {} flagged for tampered logs (e.g. {:?})",
        output.len(),
        flagged.len(),
        &flagged[..flagged.len().min(5)]
    );
}
