//! A multi-tenant service dashboard.
//!
//! Three tenants — different execution modes, one with a DGIM rate limit
//! and a record quota — share one engine: one runtime, one memoization
//! cache (a private namespace each), one simulated-cluster clock. A
//! seeded traffic generator interleaves their requests at the front
//! door; the example prints each tenant's admission ledger, a
//! point-in-time window query taken mid-stream, and the service's
//! health and metrics endpoints.
//!
//! Everything printed is deterministic: the same bytes on every run and
//! at every worker-thread count (CI runs it twice and `cmp`s).
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-bench --example serve_dashboard
//! ```

use slider_apps::Hct;
use slider_dcache::CacheConfig;
use slider_mapreduce::{EngineShared, EventTimeConfig, ExecMode, SimulationConfig, Stamped};
use slider_serve::{RateLimit, ServiceRuntime, TenantSpec};
use slider_workloads::disorder::DisorderConfig;
use slider_workloads::multitenant::{multitenant_stream, MultiTenantConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared engine for the whole service.
    let shared = EngineShared::builder()
        .cache(CacheConfig::paper_defaults(4))
        .clock()
        .build();
    let mut service: ServiceRuntime<Hct> = ServiceRuntime::new(shared);

    let event = EventTimeConfig {
        epoch_len: 24,
        records_per_split: 4,
        window_epochs: Some(3),
        lateness: 12,
    };

    // Three tenants, three execution modes. "bravo" is the hot tenant and
    // pays for it: a 4-requests-per-32-ticks DGIM rate limit and a
    // lifetime quota of 60 records.
    let tenants = [
        ("alpha", ExecMode::slider_folding(), None, None),
        (
            "bravo",
            ExecMode::slider_daba(),
            Some(RateLimit::new(4, 32)),
            Some(60u64),
        ),
        ("charlie", ExecMode::Recompute, None, None),
    ];
    let mut ids = Vec::new();
    for (name, mode, rate, quota) in tenants {
        let mut spec = TenantSpec::new(name, mode, event)
            .with_partitions(4)
            .with_simulation(SimulationConfig::paper_defaults());
        if let Some(rate) = rate {
            spec = spec.with_rate_limit(rate);
        }
        if let Some(quota) = quota {
            spec = spec.with_record_quota(quota);
        }
        ids.push(service.register(Hct::new(), spec)?);
        println!("registered tenant {name} ({mode:?})");
    }
    println!();

    // Interleaved front-door traffic, tenant 1 ("bravo") running hot.
    let traffic = multitenant_stream(
        0xd00d,
        &MultiTenantConfig {
            tenants: 3,
            requests_per_tenant: 8,
            records_per_request: 6,
            stream: DisorderConfig {
                records: 0,
                mean_step: 2,
                lateness: 12,
                vocabulary: 24,
            },
            hot_tenant: Some(1),
            hot_factor: 3,
            mean_arrival_gap: 4,
        },
    );

    println!("== admission ledger ==");
    for request in &traffic {
        let id = ids[request.tenant];
        let records: Vec<Stamped<String>> = request
            .records
            .iter()
            .map(|(t, s, line)| Stamped::new(*t, *s, line.clone()))
            .collect();
        let outcome = service.ingest(id, request.arrival, records)?;
        println!(
            "t={:>3} tenant={} req#{:<2} {} runs={}",
            request.arrival,
            request.tenant,
            request.index,
            outcome.decision,
            outcome.runs.len()
        );
    }
    println!();

    // Point-in-time queries while every tenant's stream is still open.
    println!("== window queries (mid-stream) ==");
    for (tenant, id) in ids.iter().enumerate() {
        let view = service.query(*id)?;
        let top = view
            .output
            .iter()
            .max_by_key(|(word, count)| (**count, std::cmp::Reverse(word.as_str())))
            .map(|(word, count)| format!("{word}={count}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "tenant={} watermark={:?} keys={} buffered={} top={}",
            tenant,
            view.watermark,
            view.output.len(),
            view.buffered_records,
            top
        );
    }
    println!();

    println!("== /health ==");
    print!("{}", service.health());
    println!();
    println!("== /metrics ==");
    print!("{}", service.metrics());
    println!();

    // One tenant leaves; the dashboard reflects it immediately.
    let report = service.deregister(ids[1])?;
    println!(
        "deregistered {} after {} runs ({} records admitted, {} rejected)",
        report.name,
        report.stats.runs,
        report.stats.records_admitted,
        report.stats.records_rejected
    );
    println!();
    println!("== /health (after departure) ==");
    print!("{}", service.health());
    Ok(())
}
