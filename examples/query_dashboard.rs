//! §5 query processing: a Pig-Latin-like dashboard query over a sliding
//! window of page views, compiled to a multi-job incremental pipeline.
//!
//! The query joins page views against the user table, sums revenue per
//! region, and keeps the top regions — three operators, two MapReduce
//! jobs. Only the window-facing first job sees the slide; the second
//! propagates changes with strawman trees (§5's multi-level scheme).
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-query --example query_dashboard
//! ```

use slider_mapreduce::{make_splits, ExecMode, JobConfig};
use slider_query::{pageview_row, parse_script, user_table, Row, TableRegistry};
use slider_workloads::pageviews::{generate_users, generate_views, PageViewConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PageViewConfig {
        users: 600,
        pages: 300,
        skew: 1.05,
    };
    let users = generate_users(0, &cfg);
    let views: Vec<Row> = generate_views(3, &cfg, 0, 12_000)
        .iter()
        .map(pageview_row)
        .collect();

    // The dashboard query, written in the Pig-Latin-like dialect. Page-view
    // schema: $0 user, $1 page, $2 time, $3 bytes, $4 revenue; the join
    // appends $5 age, $6 region from the user relation.
    let script = "
        views  = LOAD 'pageviews';
        joined = JOIN views BY $0, users;
        region = GROUP joined BY $6 AGGREGATE SUM($4), COUNT;
        top    = ORDER region BY $1 DESC LIMIT 5;
    ";
    let mut tables = TableRegistry::new();
    tables.insert("users".to_string(), user_table(&users));
    let query = parse_script(script, &tables)?;

    let mut exec = query.compile(
        JobConfig::new(ExecMode::slider_folding()).with_partitions(4),
        16,
    )?;
    println!("compiled to {} MapReduce jobs\n", exec.jobs());

    // Initial window: 100 splits of 100 views.
    let stats = exec.initial_run(make_splits(0, views[..10_000].to_vec(), 100))?;
    println!("initial run: {} total work units", stats.total_work());
    print_top(&exec);

    // Slide by 5%: five splits leave, five arrive.
    let stats = exec.advance(5, make_splits(1_000, views[10_000..10_500].to_vec(), 100))?;
    println!(
        "\nafter slide: {} work units ({} inner-stage buckets re-mapped of {})",
        stats.total_work(),
        stats.inner.iter().map(|s| s.buckets_changed).sum::<usize>(),
        stats.inner.iter().map(|s| s.buckets_total).sum::<usize>(),
    );
    print_top(&exec);
    Ok(())
}

fn print_top(exec: &slider_query::QueryExecutor) {
    println!("top regions by revenue (region, revenue_micros, views):");
    for row in exec.rows() {
        println!("  {row:?}");
    }
}
