//! Approximate windowed count-distinct: per-key DGIM counters.
//!
//! ```text
//! cargo run --example approx_distinct
//! ```
//!
//! Streams synthetic page views through a
//! [`KeyedDistinctCounter`](slider_core::KeyedDistinctCounter) — one DGIM
//! exponential histogram per user — and compares against exact per-event
//! retention at checkpoints: the distinct-user count is *exact* (DGIM
//! keeps each key's newest timestamp precisely), per-user frequencies are
//! within (1 ± ε), and the space is a small fraction of the exact
//! window's. All output is deterministic.

use std::collections::BTreeMap;

use slider_core::KeyedDistinctCounter;
use slider_workloads::pageviews::{generate_views, PageViewConfig};

const WINDOW: u64 = 2048;
const EPSILON: f64 = 0.1;

fn main() {
    let config = PageViewConfig {
        users: 40,
        ..PageViewConfig::default()
    };
    let views = generate_views(0xd157, &config, 0, 6000);

    let mut keyed = KeyedDistinctCounter::new(WINDOW, EPSILON);
    let mut exact: BTreeMap<u32, Vec<u64>> = BTreeMap::new();

    println!("windowed count-distinct, window {WINDOW} ticks, epsilon {EPSILON}");
    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>8} {:>11}",
        "tick", "distinct", "(exact)", "buckets", "events", "max err %"
    );
    for (i, view) in views.iter().enumerate() {
        keyed.record(view.user, view.time);
        exact.entry(view.user).or_default().push(view.time);
        if i % 1000 == 999 {
            let now = view.time;
            let exact_distinct = exact
                .values()
                .filter(|ts| ts.iter().any(|&t| t + WINDOW > now))
                .count();
            let exact_events: usize = exact
                .values()
                .map(|ts| ts.iter().filter(|&&t| t + WINDOW > now).count())
                .sum();
            let mut max_err = 0.0f64;
            for (&user, times) in &exact {
                let truth = times.iter().filter(|&&t| t + WINDOW > now).count();
                if truth == 0 {
                    continue;
                }
                let est = keyed.estimate(&user, now);
                let err = (est.abs_diff(truth as u64)) as f64 / truth as f64;
                max_err = max_err.max(err);
            }
            let approx_distinct = keyed.distinct_active(now);
            assert_eq!(
                approx_distinct as usize, exact_distinct,
                "distinct-active is exact by construction"
            );
            assert!(
                max_err <= EPSILON + f64::EPSILON,
                "within the (1 +/- eps) envelope"
            );
            println!(
                "{:>6} {:>9} {:>9} {:>8} {:>8} {:>11.2}",
                now,
                approx_distinct,
                exact_distinct,
                keyed.total_buckets(),
                exact_events,
                max_err * 100.0
            );
        }
    }
    println!(
        "space: {} DGIM buckets vs {} exact in-window events ({} keys tracked)",
        keyed.total_buckets(),
        exact
            .values()
            .map(|ts| {
                let now = views.last().unwrap().time;
                ts.iter().filter(|&&t| t + WINDOW > now).count()
            })
            .sum::<usize>(),
        keyed.tracked_keys()
    );
    println!("distinct counts exact; per-key estimates within the epsilon envelope.");
}
