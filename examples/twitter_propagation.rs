//! Case study §8.1: information-propagation trees for Twitter, as an
//! append-only windowed computation with split processing.
//!
//! Weekly tweet batches are appended to the window; the coalescing
//! contraction tree updates each URL's Krackhardt propagation tree without
//! reprocessing history, and split processing moves the root coalescing
//! off the critical path.
//!
//! Run with:
//! ```text
//! cargo run --release -p slider-apps --example twitter_propagation
//! ```

use std::sync::Arc;

use slider_apps::TwitterPropagation;
use slider_mapreduce::{make_splits, ExecMode, JobConfig, WindowedJob};
use slider_workloads::twitter::{generate, TwitterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic stand-in for the paper's Twitter crawl: a preferential-
    // attachment follower graph plus a tweet stream with URL cascades.
    let data = generate(
        42,
        &TwitterConfig {
            users: 2_000,
            avg_follows: 8,
            urls: 150,
            repost_probability: 0.35,
        },
        20_000,
    );
    println!(
        "dataset: {} tweets, {} follow edges",
        data.tweets.len(),
        data.graph.edges()
    );

    let mut job = WindowedJob::new(
        TwitterPropagation::new(Arc::clone(&data.graph)),
        JobConfig::new(ExecMode::slider_coalescing(true)).with_partitions(4),
    )?;

    // The history plus four weekly appends (Table 4's shape: ~5% each).
    let intervals = data.intervals(&[80, 5, 5, 5, 5]);
    let mut iter = intervals.into_iter();
    let mut next_id = 0u64;
    let mut mk = |tweets: Vec<slider_workloads::twitter::Tweet>| {
        let splits = make_splits(next_id, tweets, 200);
        next_id += splits.len() as u64;
        splits
    };

    let initial = job.initial_run(mk(iter.next().expect("five intervals")))?;
    println!(
        "initial run: {} URLs tracked, {} work units\n",
        job.output().len(),
        initial.work.foreground_total()
    );

    for (week, tweets) in iter.enumerate() {
        let stats = job.advance(0, mk(tweets))?;
        // The deepest propagation tree currently in the window.
        let deepest = job
            .output()
            .iter()
            .max_by_key(|(_, s)| (s.depth, s.edges))
            .map(|(url, s)| (*url, *s))
            .expect("at least one URL");
        println!(
            "week {}: +{} tweets | update work {:>6} (bg {:>5}) | deepest cascade: url {} depth {} ({} spreaders, {} edges)",
            week + 1,
            stats.map_tasks * 200,
            stats.work.foreground_total(),
            stats.work.contraction_bg.work,
            deepest.0,
            deepest.1.depth,
            deepest.1.nodes,
            deepest.1.edges,
        );
    }
    Ok(())
}
